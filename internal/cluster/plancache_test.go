package cluster

import (
	"strings"
	"testing"

	"simdb/internal/optimizer"
)

func TestNormalizeAQL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"for $r in dataset R return $r", "for $r in dataset R return $r"},
		{"  for   $r\n\tin dataset R\nreturn $r  ", "for $r in dataset R return $r"},
		// Whitespace inside string literals must survive byte-for-byte.
		{"where $r.s ~= 'a  b'", "where $r.s ~= 'a  b'"},
		{`where $r.s ~= "a   b"  return  $r`, `where $r.s ~= "a   b" return $r`},
		// Escaped quote does not terminate the literal.
		{`return 'a\'  b'   ;`, `return 'a\'  b' ;`},
	}
	for _, c := range cases {
		if got := normalizeAQL(c.in); got != c.want {
			t.Errorf("normalizeAQL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Two queries differing only inside a literal must key differently.
	if normalizeAQL("return 'a  b'") == normalizeAQL("return 'a b'") {
		t.Error("literals with different spacing collided after normalization")
	}
}

const jaccardQuery = `
	for $r in dataset Reviews
	where similarity-jaccard(word-tokens($r.summary),
	                         word-tokens('great product fantastic')) >= 0.5
	return $r.id`

func TestPlanCacheHitSkipsCompile(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	sess := NewSession()
	loadReviews(t, c, sess)

	cold := exec(t, c, sess, jaccardQuery)
	if cold.Stats.PlanCacheHit {
		t.Fatal("first execution reported a cache hit")
	}
	if cold.Stats.TranslateNs == 0 && cold.Stats.OptimizeNs == 0 {
		t.Fatal("cold execution reported no compile time")
	}

	warm := exec(t, c, sess, jaccardQuery)
	if !warm.Stats.PlanCacheHit {
		t.Fatal("second execution missed the cache")
	}
	if warm.Stats.ParseNs != 0 || warm.Stats.TranslateNs != 0 || warm.Stats.OptimizeNs != 0 {
		t.Fatalf("cache hit still compiled: parse=%d translate=%d optimize=%d",
			warm.Stats.ParseNs, warm.Stats.TranslateNs, warm.Stats.OptimizeNs)
	}
	if got, want := rowInts(t, warm.Rows), rowInts(t, cold.Rows); len(got) != len(want) {
		t.Fatalf("cached plan returned %v, cold plan %v", got, want)
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cached plan returned %v, cold plan %v", got, want)
			}
		}
	}
	st := c.PlanCache().Stats()
	if st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 entry", st)
	}
}

func TestPlanCacheWhitespaceInsensitive(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	sess := NewSession()
	loadReviews(t, c, sess)

	exec(t, c, sess, jaccardQuery)
	spaced := "  for $r in dataset Reviews\n\n where similarity-jaccard(word-tokens($r.summary),\n word-tokens('great product fantastic')) >= 0.5\n return $r.id"
	res := exec(t, c, sess, spaced)
	if !res.Stats.PlanCacheHit {
		t.Fatal("whitespace-only variation missed the cache")
	}
}

func TestPlanCacheDDLInvalidation(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	sess := NewSession()
	loadReviews(t, c, sess)

	exec(t, c, sess, jaccardQuery)
	warm := exec(t, c, sess, jaccardQuery)
	if !warm.Stats.PlanCacheHit {
		t.Fatal("warm-up miss")
	}

	// DDL bumps the catalog epoch; the cached scan plan must not be
	// served afterwards — recompilation may now pick the new index.
	exec(t, c, sess, `create index rsum on Reviews(summary) type keyword;`)
	after := exec(t, c, sess, jaccardQuery)
	if after.Stats.PlanCacheHit {
		t.Fatal("cache served a pre-DDL plan after create index")
	}
	st := c.PlanCache().Stats()
	if st.Invalidations == 0 {
		t.Fatalf("no invalidation recorded: %+v", st)
	}
	// The recompiled plan re-caches under the new epoch.
	again := exec(t, c, sess, jaccardQuery)
	if !again.Stats.PlanCacheHit {
		t.Fatal("post-DDL recompile was not cached")
	}
}

func TestPlanCacheKeysOnSessionState(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	sess := NewSession()
	loadReviews(t, c, sess)

	q := `for $r in dataset Reviews where $r.username ~= 'marla' return $r.id`
	sessA := NewSession()
	sessA.SimFunction = "edit-distance"
	sessA.SimThreshold = "1"
	a := exec(t, c, sessA, q)

	// Same text, different simthreshold: must NOT hit sessA's entry.
	sessB := NewSession()
	sessB.SimFunction = "edit-distance"
	sessB.SimThreshold = "2"
	b := exec(t, c, sessB, q)
	if b.Stats.PlanCacheHit {
		t.Fatal("different simthreshold hit the other session's plan")
	}
	if len(b.Rows) <= len(a.Rows) {
		t.Fatalf("threshold 2 should match more rows than threshold 1 (got %d vs %d)",
			len(b.Rows), len(a.Rows))
	}

	// Different optimizer options: separate entry too.
	sessC := NewSession()
	sessC.SimFunction = "edit-distance"
	sessC.SimThreshold = "1"
	opts := optimizer.DefaultOptions()
	opts.UseIndexes = false
	sessC.Opts = &opts
	cold := exec(t, c, sessC, q)
	if cold.Stats.PlanCacheHit {
		t.Fatal("different optimizer options hit a cached plan")
	}
}

func TestPlanCacheSetStatementsCached(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	sess := NewSession()
	loadReviews(t, c, sess)

	req := `set simfunction 'edit-distance'; set simthreshold '1';
		for $r in dataset Reviews where $r.username ~= 'marla' return $r.id`
	fresh := NewSession()
	exec(t, c, fresh, req)
	if fresh.SimFunction != "edit-distance" || fresh.SimThreshold != "1" {
		t.Fatalf("set statements did not apply: %+v", fresh)
	}

	// A second fresh session replays the request via the cache; its
	// use/set effects must still land on the session.
	fresh2 := NewSession()
	res := exec(t, c, fresh2, req)
	if !res.Stats.PlanCacheHit {
		t.Fatal("identical request from a fresh session missed the cache")
	}
	if fresh2.SimFunction != "edit-distance" || fresh2.SimThreshold != "1" {
		t.Fatalf("cache hit skipped session side effects: %+v", fresh2)
	}
}

func TestPlanCacheDDLRequestsNotCached(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	sess := NewSession()
	exec(t, c, sess, `create dataset D primary key id;`)
	before := c.PlanCache().Stats().Entries
	exec(t, c, sess, `create dataset E primary key id; count(for $d in dataset D return $d)`)
	if got := c.PlanCache().Stats().Entries; got != before {
		t.Fatalf("request containing DDL was cached (entries %d -> %d)", before, got)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	c, err := New(Config{NumNodes: 1, PartitionsPerNode: 1, DataDir: t.TempDir(), PlanCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess := NewSession()
	exec(t, c, sess, `create dataset D primary key id;`)
	q := `count(for $d in dataset D return $d)`
	exec(t, c, sess, q)
	res := exec(t, c, sess, q)
	if res.Stats.PlanCacheHit {
		t.Fatal("disabled cache served a hit")
	}
	if st := c.PlanCache().Stats(); st.Entries != 0 {
		t.Fatalf("disabled cache stored entries: %+v", st)
	}
}

// TestPlanCachePromotion exercises the hot-plan path end to end: cold
// and early-warm queries run the interpreted build, the hit that
// crosses SpecializeAfterHits triggers one specialized recompile, and
// every query after that serves the promoted build from the cache.
func TestPlanCachePromotion(t *testing.T) {
	c := newTestCluster(t, 1, 2) // default SpecializeAfterHits = 3
	sess := NewSession()
	loadReviews(t, c, sess)

	cold := exec(t, c, sess, jaccardQuery)
	if cold.Stats.PlanCacheHit || cold.Stats.Specialized {
		t.Fatalf("cold run: hit=%v specialized=%v, want false/false",
			cold.Stats.PlanCacheHit, cold.Stats.Specialized)
	}
	want := rowInts(t, cold.Rows)

	// Hits 1 and 2 on the base entry serve the interpreted plan.
	for i := 0; i < 2; i++ {
		res := exec(t, c, sess, jaccardQuery)
		if !res.Stats.PlanCacheHit || res.Stats.Specialized {
			t.Fatalf("warm run %d: hit=%v specialized=%v, want true/false",
				i, res.Stats.PlanCacheHit, res.Stats.Specialized)
		}
	}

	// Hit 3 crosses the threshold: the cache declines to serve and the
	// query recompiles with the specialization pass.
	promoted := exec(t, c, sess, jaccardQuery)
	if promoted.Stats.PlanCacheHit || !promoted.Stats.Specialized {
		t.Fatalf("promotion run: hit=%v specialized=%v, want false/true",
			promoted.Stats.PlanCacheHit, promoted.Stats.Specialized)
	}
	if promoted.Stats.OptimizeNs == 0 {
		t.Fatal("promotion run reported no optimize time")
	}

	// From now on the promoted build serves straight from the cache.
	after := exec(t, c, sess, jaccardQuery)
	if !after.Stats.PlanCacheHit || !after.Stats.Specialized {
		t.Fatalf("post-promotion run: hit=%v specialized=%v, want true/true",
			after.Stats.PlanCacheHit, after.Stats.Specialized)
	}
	for _, res := range []*Result{promoted, after} {
		got := rowInts(t, res.Rows)
		if len(got) != len(want) {
			t.Fatalf("specialized plan returned %v, interpreted %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("specialized plan returned %v, interpreted %v", got, want)
			}
		}
	}

	// explain analyze reflects the promoted state: its operator table
	// carries the [compiled] annotations the promoted plan runs with.
	ea := exec(t, c, sess, "explain analyze "+jaccardQuery)
	var joined strings.Builder
	for _, r := range ea.Rows {
		joined.WriteString(r.Str())
		joined.WriteByte('\n')
	}
	if !strings.Contains(joined.String(), "[compiled]") {
		t.Fatalf("explain analyze after promotion shows no [compiled] operator:\n%s",
			joined.String())
	}

	if snap := c.Metrics(); snap.Counters["cluster.plancache.promotions"] == 0 {
		t.Fatal("promotion did not bump cluster.plancache.promotions")
	}
}

// TestPlanCachePromotionDisabled pins the opt-out: a negative threshold
// never promotes, no matter how hot the plan runs.
func TestPlanCachePromotionDisabled(t *testing.T) {
	c, err := New(Config{NumNodes: 1, PartitionsPerNode: 2, DataDir: t.TempDir(),
		SpecializeAfterHits: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	sess := NewSession()
	loadReviews(t, c, sess)

	exec(t, c, sess, jaccardQuery)
	for i := 0; i < 6; i++ {
		res := exec(t, c, sess, jaccardQuery)
		if !res.Stats.PlanCacheHit || res.Stats.Specialized {
			t.Fatalf("run %d with promotion disabled: hit=%v specialized=%v",
				i, res.Stats.PlanCacheHit, res.Stats.Specialized)
		}
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	pc := NewPlanCache(2)
	k := func(s string) planKey { return planKey{text: s} }
	pc.put(&planEntry{key: k("a")})
	pc.put(&planEntry{key: k("b")})
	if _, ok := pc.get(k("a"), 0); !ok { // a is now MRU
		t.Fatal("a missing")
	}
	pc.put(&planEntry{key: k("c")}) // evicts b
	if _, ok := pc.get(k("b"), 0); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, s := range []string{"a", "c"} {
		if _, ok := pc.get(k(s), 0); !ok {
			t.Fatalf("entry %s evicted unexpectedly", s)
		}
	}
}

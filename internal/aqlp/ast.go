package aqlp

import "simdb/internal/adm"

// Query is a parsed AQL request: leading statements (use/set/DDL/UDF
// definitions) followed by an optional query body expression.
type Query struct {
	Stmts []Stmt
	Body  Node
	// Explain marks a leading `explain` keyword: compile the body and
	// return the optimized plan instead of rows. Analyze additionally
	// runs the query (`explain analyze`) and annotates the plan with
	// measured per-operator time/tuple/spill columns.
	Explain bool
	Analyze bool
}

// Stmt is a top-level statement.
type Stmt interface{ stmtNode() }

// UseStmt selects the default dataverse.
type UseStmt struct{ Dataverse string }

// SetStmt sets a compiler property (simfunction, simthreshold).
type SetStmt struct{ Key, Val string }

// CreateFunctionStmt declares an AQL UDF; the body is inlined at use
// sites during translation.
type CreateFunctionStmt struct {
	Name   string
	Params []string
	Body   Node
}

// CreateDataverseStmt creates a dataverse.
type CreateDataverseStmt struct{ Name string }

// CreateDatasetStmt creates a dataset with the given primary-key field.
type CreateDatasetStmt struct {
	Name    string
	PKField string
	// AutoPK requests an auto-generated integer key when records lack
	// the field, like the paper's imported datasets.
	AutoPK bool
}

// CreateIndexStmt creates a secondary index: type is "btree",
// "keyword", or "ngram" (with GramLen).
type CreateIndexStmt struct {
	Name    string
	Dataset string
	Field   string
	IType   string
	GramLen int
}

// DropDatasetStmt removes a dataset.
type DropDatasetStmt struct{ Name string }

func (UseStmt) stmtNode()             {}
func (SetStmt) stmtNode()             {}
func (CreateFunctionStmt) stmtNode()  {}
func (CreateDataverseStmt) stmtNode() {}
func (CreateDatasetStmt) stmtNode()   {}
func (CreateIndexStmt) stmtNode()     {}
func (DropDatasetStmt) stmtNode()     {}

// Node is an expression AST node.
type Node interface{ astNode() }

// LitNode is a literal value.
type LitNode struct{ Val adm.Value }

// VarNode references a $variable.
type VarNode struct{ Name string }

// MetaVarNode references an AQL+ $$meta variable (resolved against the
// optimizer-provided meta environment).
type MetaVarNode struct{ Name string }

// MetaClauseNode references an AQL+ ##meta clause (a registered
// subplan); legal in for-in position.
type MetaClauseNode struct{ Name string }

// DatasetNode references a dataset in for-in position: dataset Name or
// dataset('Name').
type DatasetNode struct{ Name string }

// FieldNode accesses base.field.
type FieldNode struct {
	Base  Node
	Field string
}

// IndexNode accesses base[idx].
type IndexNode struct {
	Base Node
	Idx  Node
}

// CallNode invokes a builtin or UDF.
type CallNode struct {
	Name string
	Args []Node
}

// BinNode is a binary operation; Op is the surface token ("=", "~=",
// "+", "and", …).
type BinNode struct {
	Op   string
	L, R Node
}

// UnaryNode is -x or not x.
type UnaryNode struct {
	Op string
	X  Node
}

// RecordNode constructs a record.
type RecordNode struct {
	Keys []string
	Vals []Node
}

// ListNode constructs an ordered list.
type ListNode struct{ Elems []Node }

// HintNode attaches a compiler hint to the following expression
// (e.g. /*+ bcast */ $x).
type HintNode struct {
	Hint string
	X    Node
}

// UnionNode is the AQL+ union of branches, legal in for-in position.
type UnionNode struct{ Branches []Node }

// FLWORNode is a FLWOR expression.
type FLWORNode struct {
	Clauses []Clause
	Ret     Node
}

// Clause is a FLWOR clause.
type Clause interface{ clauseNode() }

// ForClause is "for $v [at $p] in expr".
type ForClause struct {
	V   string
	Pos string
	In  Node
}

// LetClause is "let $v := expr".
type LetClause struct {
	V string
	E Node
}

// WhereClause filters.
type WhereClause struct{ E Node }

// GroupClause is "group by $k := e, ... with $v, ..." with an optional
// /*+ hash */ hint.
type GroupClause struct {
	Keys []GroupKey
	With []string
	Hint string
}

// GroupKey is one grouping key.
type GroupKey struct {
	V string
	E Node
}

// OrderClause is "order by e [desc], ...".
type OrderClause struct{ Items []OrderItem }

// OrderItem is one sort key.
type OrderItem struct {
	E    Node
	Desc bool
}

// LimitClause bounds the result count.
type LimitClause struct{ E Node }

// JoinClause is the AQL+ explicit join: "join $v in (expr) on cond".
type JoinClause struct {
	V  string
	In Node
	On Node
}

func (LitNode) astNode()        {}
func (VarNode) astNode()        {}
func (MetaVarNode) astNode()    {}
func (MetaClauseNode) astNode() {}
func (DatasetNode) astNode()    {}
func (FieldNode) astNode()      {}
func (IndexNode) astNode()      {}
func (CallNode) astNode()       {}
func (BinNode) astNode()        {}
func (UnaryNode) astNode()      {}
func (RecordNode) astNode()     {}
func (ListNode) astNode()       {}
func (HintNode) astNode()       {}
func (UnionNode) astNode()      {}
func (FLWORNode) astNode()      {}

func (ForClause) clauseNode()   {}
func (LetClause) clauseNode()   {}
func (WhereClause) clauseNode() {}
func (GroupClause) clauseNode() {}
func (OrderClause) clauseNode() {}
func (LimitClause) clauseNode() {}
func (JoinClause) clauseNode()  {}

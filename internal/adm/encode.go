package adm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding: one tag byte followed by a kind-specific payload.
// Variable-length quantities use unsigned varints. The encoding is the
// wire and storage format: the LSM components store encoded values and
// the simulated cluster connectors count encoded bytes as network
// traffic.

// Append appends the binary encoding of v to dst and returns the
// extended slice.
func Append(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindInt:
		dst = binary.AppendVarint(dst, v.i)
	case KindDouble:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindList, KindBag:
		dst = binary.AppendUvarint(dst, uint64(len(v.elems)))
		for _, e := range v.elems {
			dst = Append(dst, e)
		}
	case KindRecord:
		dst = binary.AppendUvarint(dst, uint64(v.rec.Len()))
		for i := 0; i < v.rec.Len(); i++ {
			n, fv := v.rec.FieldAt(i)
			dst = binary.AppendUvarint(dst, uint64(len(n)))
			dst = append(dst, n...)
			dst = Append(dst, fv)
		}
	}
	return dst
}

// Encode returns the binary encoding of v.
func Encode(v Value) []byte { return Append(nil, v) }

// EncodedSize returns len(Encode(v)) without allocating the full buffer
// for scalars; composite values are sized recursively.
func EncodedSize(v Value) int {
	switch v.kind {
	case KindNull:
		return 1
	case KindBool:
		return 2
	case KindInt:
		var tmp [binary.MaxVarintLen64]byte
		return 1 + binary.PutVarint(tmp[:], v.i)
	case KindDouble:
		return 9
	case KindString:
		return 1 + uvarintLen(uint64(len(v.s))) + len(v.s)
	case KindList, KindBag:
		n := 1 + uvarintLen(uint64(len(v.elems)))
		for _, e := range v.elems {
			n += EncodedSize(e)
		}
		return n
	case KindRecord:
		n := 1 + uvarintLen(uint64(v.rec.Len()))
		for i := 0; i < v.rec.Len(); i++ {
			name, fv := v.rec.FieldAt(i)
			n += uvarintLen(uint64(len(name))) + len(name) + EncodedSize(fv)
		}
		return n
	}
	return 0
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// Decode decodes one value from the front of buf and returns it with
// the number of bytes consumed.
func Decode(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return Null, 0, fmt.Errorf("adm: decode: empty buffer")
	}
	kind := Kind(buf[0])
	p := 1
	switch kind {
	case KindNull:
		return Null, p, nil
	case KindBool:
		if len(buf) < 2 {
			return Null, 0, fmt.Errorf("adm: decode bool: short buffer")
		}
		return NewBool(buf[1] != 0), 2, nil
	case KindInt:
		i, n := binary.Varint(buf[p:])
		if n <= 0 {
			return Null, 0, fmt.Errorf("adm: decode int: bad varint")
		}
		return NewInt(i), p + n, nil
	case KindDouble:
		if len(buf) < p+8 {
			return Null, 0, fmt.Errorf("adm: decode double: short buffer")
		}
		bits := binary.LittleEndian.Uint64(buf[p:])
		return NewDouble(math.Float64frombits(bits)), p + 8, nil
	case KindString:
		l, n := binary.Uvarint(buf[p:])
		if n <= 0 {
			return Null, 0, fmt.Errorf("adm: decode string: bad length")
		}
		p += n
		if uint64(len(buf)-p) < l {
			return Null, 0, fmt.Errorf("adm: decode string: short buffer")
		}
		return NewString(string(buf[p : p+int(l)])), p + int(l), nil
	case KindList, KindBag:
		l, n := binary.Uvarint(buf[p:])
		if n <= 0 {
			return Null, 0, fmt.Errorf("adm: decode list: bad length")
		}
		p += n
		elems := make([]Value, 0, l)
		for i := uint64(0); i < l; i++ {
			e, n, err := Decode(buf[p:])
			if err != nil {
				return Null, 0, err
			}
			elems = append(elems, e)
			p += n
		}
		if kind == KindList {
			return NewList(elems), p, nil
		}
		return NewBag(elems), p, nil
	case KindRecord:
		l, n := binary.Uvarint(buf[p:])
		if n <= 0 {
			return Null, 0, fmt.Errorf("adm: decode record: bad length")
		}
		p += n
		rec := EmptyRecord(int(l))
		for i := uint64(0); i < l; i++ {
			nl, n := binary.Uvarint(buf[p:])
			if n <= 0 {
				return Null, 0, fmt.Errorf("adm: decode record: bad name length")
			}
			p += n
			if uint64(len(buf)-p) < nl {
				return Null, 0, fmt.Errorf("adm: decode record: short buffer")
			}
			name := string(buf[p : p+int(nl)])
			p += int(nl)
			fv, n2, err := Decode(buf[p:])
			if err != nil {
				return Null, 0, err
			}
			p += n2
			rec.Set(name, fv)
		}
		return NewRecord(rec), p, nil
	}
	return Null, 0, fmt.Errorf("adm: decode: unknown kind %d", kind)
}

// MustDecode decodes one value and panics on error or trailing bytes;
// it is a convenience for internal buffers known to hold one value.
func MustDecode(buf []byte) Value {
	v, n, err := Decode(buf)
	if err != nil {
		panic(err)
	}
	if n != len(buf) {
		panic(fmt.Sprintf("adm: MustDecode: %d trailing bytes", len(buf)-n))
	}
	return v
}

package adm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// FromJSON parses one JSON document into a Value. JSON numbers become
// int64 when they are integral and in range, double otherwise; JSON
// arrays become ordered lists; JSON objects become records with fields
// in the document's order. This is the loader used to import the
// synthetic datasets, mirroring how the paper imported raw JSON into
// AsterixDB without declaring field schemas.
func FromJSON(data []byte) (Value, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return Null, fmt.Errorf("adm: parse json: %w", err)
	}
	return fromAny(raw)
}

func fromAny(raw any) (Value, error) {
	switch x := raw.(type) {
	case nil:
		return Null, nil
	case bool:
		return NewBool(x), nil
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return NewInt(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return Null, fmt.Errorf("adm: bad json number %q", x)
		}
		return NewDouble(f), nil
	case string:
		return NewString(x), nil
	case []any:
		elems := make([]Value, len(x))
		for i, e := range x {
			v, err := fromAny(e)
			if err != nil {
				return Null, err
			}
			elems[i] = v
		}
		return NewList(elems), nil
	case map[string]any:
		// encoding/json loses object field order; sort names so the
		// result is deterministic.
		names := make([]string, 0, len(x))
		for n := range x {
			names = append(names, n)
		}
		sort.Strings(names)
		rec := EmptyRecord(len(names))
		for _, n := range names {
			v, err := fromAny(x[n])
			if err != nil {
				return Null, err
			}
			rec.Set(n, v)
		}
		return NewRecord(rec), nil
	}
	return Null, fmt.Errorf("adm: unsupported json value %T", raw)
}

// ToJSONish converts the value to the nearest encoding/json-compatible
// Go value (bags become arrays). Used by the CLI to emit results.
func ToJSONish(v Value) any {
	switch v.kind {
	case KindNull:
		return nil
	case KindBool:
		return v.b
	case KindInt:
		return v.i
	case KindDouble:
		if math.IsNaN(v.f) || math.IsInf(v.f, 0) {
			return fmt.Sprint(v.f)
		}
		return v.f
	case KindString:
		return v.s
	case KindList, KindBag:
		out := make([]any, len(v.elems))
		for i, e := range v.elems {
			out[i] = ToJSONish(e)
		}
		return out
	case KindRecord:
		out := make(map[string]any, v.rec.Len())
		for i := 0; i < v.rec.Len(); i++ {
			n, fv := v.rec.FieldAt(i)
			out[n] = ToJSONish(fv)
		}
		return out
	}
	return nil
}

package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"simdb/internal/adm"
)

// buildPage assembles a data page in the component writer's format:
// uint16 entry count, then (uvarint klen, key, uvarint vlen, val) per
// entry. Used only to seed the fuzzer with well-formed input.
func buildPage(entries [][2]string) []byte {
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(entries)))
	page := hdr[:]
	for _, e := range entries {
		page = binary.AppendUvarint(page, uint64(len(e[0])))
		page = append(page, e[0]...)
		page = binary.AppendUvarint(page, uint64(len(e[1])))
		page = append(page, e[1]...)
	}
	return page
}

// buildIndex assembles a page index in the footer format: uvarint
// count, then (uvarint off, uvarint length, uvarint klen, firstKey).
func buildIndex(pages []pageMeta) []byte {
	idx := binary.AppendUvarint(nil, uint64(len(pages)))
	for _, p := range pages {
		idx = binary.AppendUvarint(idx, uint64(p.off))
		idx = binary.AppendUvarint(idx, uint64(p.length))
		idx = binary.AppendUvarint(idx, uint64(len(p.firstKey)))
		idx = append(idx, p.firstKey...)
	}
	return idx
}

// FuzzWALDecode feeds arbitrary bytes to the WAL record scanner and
// payload decoder. Both must treat any malformation as end-of-prefix /
// error — never panic, never over-allocate, never read past the
// buffer. Corrupt and torn log tails are exactly arbitrary bytes.
func FuzzWALDecode(f *testing.F) {
	// Well-formed single commit record.
	rec := appendWALFrame(nil, encodeCommit(1, []walOp{
		{tree: "p", key: []byte("k1"), val: []byte("v1")},
		{tree: "i:kw", key: []byte("tok#k1"), tombstone: true},
	}))
	f.Add(rec)
	// Commit followed by a checkpoint, then a truncated third frame.
	multi := appendWALFrame(rec, encodeCheckpoint(2, 1, "p"))
	f.Add(multi)
	// Flush-begin record (component seq 1 covering ops through LSN 2).
	f.Add(appendWALFrame(rec, encodeFlushBegin(3, 1, 2, "p")))
	f.Add(append(append([]byte(nil), multi...), multi[:11]...))
	// CRC corruption in the middle of a valid stream.
	bad := append([]byte(nil), multi...)
	bad[len(bad)/2] ^= 0xFF
	f.Add(bad)
	// Pathological headers: zero length, huge length, empty payload.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4, 5})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var seen int
		n := scanWALRecords(data, func(walRecord) { seen++ })
		if n < 0 || n > int64(len(data)) {
			t.Fatalf("prefix length %d out of range [0, %d]", n, len(data))
		}
		// The accepted prefix must rescan to the same boundary — the
		// scanner is deterministic and prefix-closed (what recovery
		// relies on when it truncates a torn tail and rescans).
		if again := scanWALRecords(data[:n], nil); again != n {
			t.Fatalf("rescan of accepted prefix: %d != %d", again, n)
		}
		// The raw payload decoder must also survive the input directly.
		rec, err := decodeWALPayload(data)
		if err == nil && rec.typ == walRecCommit {
			for _, op := range rec.ops {
				_ = op.tree
			}
		}
	})
}

// FuzzComponentPage feeds arbitrary bytes to the on-disk component
// readers: the footer page index parser and the data page iterator.
// Both run over bytes read straight from disk, so bit rot must come
// back as errCorrupt, never as a panic or a runaway allocation.
func FuzzComponentPage(f *testing.F) {
	f.Add(buildPage([][2]string{{"alpha", "1"}, {"beta", "2"}, {"gamma", ""}}))
	f.Add(buildIndex([]pageMeta{
		{off: 0, length: 64, firstKey: []byte("alpha")},
		{off: 64, length: 32, firstKey: []byte("m")},
	}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF})                         // page: huge entry count, no entries
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // index: huge uvarint count
	trunc := buildPage([][2]string{{"key", "value"}})
	f.Add(trunc[:len(trunc)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		if pages, err := parsePageIndex(data); err == nil {
			if uint64(len(pages)) > uint64(len(data)) {
				t.Fatalf("parsed %d page entries from %d bytes", len(pages), len(data))
			}
			for i := 1; i < len(pages); i++ {
				_ = bytes.Compare(pages[i-1].firstKey, pages[i].firstKey)
			}
		}
		it := pageIter{page: data}
		if err := it.init(); err != nil {
			return
		}
		steps := 0
		for it.next() {
			if len(it.key)+len(it.val) > len(data) {
				t.Fatalf("entry larger than page: k=%d v=%d page=%d", len(it.key), len(it.val), len(data))
			}
			steps++
			if steps > len(data)+1 {
				t.Fatalf("iterator did not terminate after %d steps", steps)
			}
		}
	})
}

// FuzzColumnarComponent feeds arbitrary bytes to the full version-2
// read path: the file is opened as a component (footer + group index
// validation) and, if accepted, scanned end to end both whole and
// projected. Corruption must surface as an error — never a panic, an
// unbounded allocation, or a runaway loop.
func FuzzColumnarComponent(f *testing.F) {
	// Seed with a genuine columnar component image.
	seedPath := filepath.Join(f.TempDir(), "seed.cmp")
	cw, err := NewColumnarComponentWriterFS(OS, seedPath, 4096)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		rec := adm.EmptyRecord(2)
		rec.Set("id", adm.NewInt(int64(i)))
		rec.Set("text", adm.NewString(fmt.Sprintf("value %d", i)))
		entry := adm.Append([]byte{0}, adm.NewRecord(rec))
		if i%7 == 0 {
			entry = []byte{1} // tombstone
		}
		if err := cw.Add([]byte(fmt.Sprintf("k%04d", i)), entry); err != nil {
			f.Fatal(err)
		}
	}
	if err := cw.Finish(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	trunc := append([]byte(nil), seed...)
	f.Add(trunc[:len(trunc)/2])
	flip := append([]byte(nil), seed...)
	flip[len(flip)/3] ^= 0xFF
	f.Add(flip)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := parseColGroupIndex(data, int64(len(data))); err != nil {
			_ = err // must simply not panic
		}
		path := filepath.Join(t.TempDir(), "f.cmp")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := OpenComponent(path, NewBufferCache(1<<20, 4096))
		if err != nil {
			return
		}
		defer c.Close()
		limit := (len(data) + 2) * colMaxGroupRows
		scan := func(it *Iterator) {
			steps := 0
			for it.Next() {
				steps++
				if steps > limit {
					t.Fatalf("iterator did not terminate after %d steps", steps)
				}
			}
		}
		scan(c.NewIterator(nil, nil))
		scan(c.NewProjectedIterator(nil, nil, []string{"id"}))
		_, _, _ = c.Get([]byte("k0003"))
	})
}

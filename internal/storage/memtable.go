package storage

import (
	"bytes"
	"sort"
)

// memtable is the in-memory component of an LSM tree: a hash map for
// O(1) upserts and point reads, sorted lazily when flushed or scanned.
// A nil entry value is a tombstone. The memtable tracks its approximate
// byte footprint so the tree can flush when it exceeds the in-memory
// component budget (Table 2: "Budget for in-memory components").
type memtable struct {
	entries map[string]memEntry
	bytes   int64
}

type memEntry struct {
	value     []byte
	tombstone bool
}

func newMemtable() *memtable {
	return &memtable{entries: make(map[string]memEntry)}
}

// put inserts or replaces a key.
func (m *memtable) put(key, value []byte) {
	k := string(key)
	if old, ok := m.entries[k]; ok {
		m.bytes -= int64(len(old.value))
	} else {
		m.bytes += int64(len(k)) + 32
	}
	v := make([]byte, len(value))
	copy(v, value)
	m.entries[k] = memEntry{value: v}
	m.bytes += int64(len(v))
}

// del records a tombstone for the key.
func (m *memtable) del(key []byte) {
	k := string(key)
	if old, ok := m.entries[k]; ok {
		m.bytes -= int64(len(old.value))
	} else {
		m.bytes += int64(len(k)) + 32
	}
	m.entries[k] = memEntry{tombstone: true}
}

// get returns (value, tombstone, present).
func (m *memtable) get(key []byte) ([]byte, bool, bool) {
	e, ok := m.entries[string(key)]
	if !ok {
		return nil, false, false
	}
	return e.value, e.tombstone, true
}

func (m *memtable) len() int { return len(m.entries) }

func (m *memtable) sizeBytes() int64 { return m.bytes }

// sortedKeys returns the keys in byte order, optionally restricted to
// [start, end).
func (m *memtable) sortedKeys(start, end []byte) []string {
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		kb := []byte(k)
		if start != nil && bytes.Compare(kb, start) < 0 {
			continue
		}
		if end != nil && bytes.Compare(kb, end) >= 0 {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Package adm implements the SimDB data model (ADM): a small,
// semi-structured value model with nulls, booleans, 64-bit integers,
// doubles, strings, ordered lists, unordered lists (bags), and records.
//
// The model mirrors the Asterix Data Model described in the paper
// "Supporting Similarity Queries in Apache AsterixDB" (EDBT 2018):
// records are open (no schema beyond the primary key is required), lists
// may be ordered (edit distance is defined on them) or unordered
// (Jaccard is defined on them), and every value has a total order, a
// hash, and a compact binary encoding used by the storage layer and the
// simulated cluster network.
package adm

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The value kinds, in comparison order: values of a smaller kind sort
// before values of a larger kind (except int/double, which compare
// numerically with each other).
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindDouble
	KindString
	KindList // ordered list
	KindBag  // unordered list (multiset)
	KindRecord
)

// String returns the ADM type name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "boolean"
	case KindInt:
		return "int64"
	case KindDouble:
		return "double"
	case KindString:
		return "string"
	case KindList:
		return "orderedlist"
	case KindBag:
		return "unorderedlist"
	case KindRecord:
		return "record"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single ADM value. The zero Value is null. Values are
// immutable by convention: callers must not modify a list or record
// after constructing a Value from it.
type Value struct {
	kind  Kind
	b     bool
	i     int64
	f     float64
	s     string
	elems []Value // list / bag elements
	rec   *Record
}

// Record is an ordered collection of (field name, value) pairs with
// unique names. Field order is the insertion order; comparisons and
// hashes are order-insensitive (they use the name-sorted view).
type Record struct {
	names []string
	vals  []Value
}

// Null is the null value.
var Null = Value{kind: KindNull}

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{kind: KindBool, b: b} }

// NewInt returns an int64 value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewDouble returns a double value.
func NewDouble(f float64) Value { return Value{kind: KindDouble, f: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewList returns an ordered list value wrapping elems (not copied).
func NewList(elems []Value) Value { return Value{kind: KindList, elems: elems} }

// NewBag returns an unordered list (bag) value wrapping elems (not copied).
func NewBag(elems []Value) Value { return Value{kind: KindBag, elems: elems} }

// NewRecord returns a record value wrapping rec.
func NewRecord(rec *Record) Value { return Value{kind: KindRecord, rec: rec} }

// NewStringList returns an ordered list of string values.
func NewStringList(ss []string) Value {
	elems := make([]Value, len(ss))
	for i, s := range ss {
		elems[i] = NewString(s)
	}
	return NewList(elems)
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload; it panics on other kinds.
func (v Value) Bool() bool {
	v.check(KindBool)
	return v.b
}

// Int returns the int64 payload; it panics on other kinds.
func (v Value) Int() int64 {
	v.check(KindInt)
	return v.i
}

// Double returns the double payload; it panics on other kinds.
func (v Value) Double() float64 {
	v.check(KindDouble)
	return v.f
}

// Str returns the string payload; it panics on other kinds.
func (v Value) Str() string {
	v.check(KindString)
	return v.s
}

// Elems returns the elements of a list or bag; it panics on other kinds.
// Callers must not modify the returned slice.
func (v Value) Elems() []Value {
	if v.kind != KindList && v.kind != KindBag {
		panic(fmt.Sprintf("adm: Elems on %v value", v.kind))
	}
	return v.elems
}

// Rec returns the record payload; it panics on other kinds.
func (v Value) Rec() *Record {
	v.check(KindRecord)
	return v.rec
}

// Num returns the value as a float64 for numeric kinds (int, double)
// and reports whether the value was numeric.
func (v Value) Num() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindDouble:
		return v.f, true
	}
	return 0, false
}

func (v Value) check(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("adm: %v accessor on %v value", k, v.kind))
	}
}

// NewRecordFromFields builds a record from parallel name/value slices.
// Names must be unique; the slices are not copied.
func NewRecordFromFields(names []string, vals []Value) *Record {
	if len(names) != len(vals) {
		panic("adm: mismatched record field slices")
	}
	return &Record{names: names, vals: vals}
}

// EmptyRecord returns a new record with no fields and capacity for n.
func EmptyRecord(n int) *Record {
	return &Record{names: make([]string, 0, n), vals: make([]Value, 0, n)}
}

// Len returns the number of fields.
func (r *Record) Len() int { return len(r.names) }

// FieldAt returns the i-th field name and value in insertion order.
func (r *Record) FieldAt(i int) (string, Value) { return r.names[i], r.vals[i] }

// Names returns the field names in insertion order. Callers must not
// modify the returned slice.
func (r *Record) Names() []string { return r.names }

// Get returns the value of the named field. Missing fields yield
// (Null, false), which gives the open-record semantics the paper's
// schemaless datasets rely on.
func (r *Record) Get(name string) (Value, bool) {
	for i, n := range r.names {
		if n == name {
			return r.vals[i], true
		}
	}
	return Null, false
}

// GetPath resolves a dotted field path such as "user.name".
func (r *Record) GetPath(path string) (Value, bool) {
	cur := NewRecord(r)
	for {
		dot := strings.IndexByte(path, '.')
		var name string
		if dot < 0 {
			name = path
		} else {
			name = path[:dot]
		}
		if cur.kind != KindRecord {
			return Null, false
		}
		v, ok := cur.rec.Get(name)
		if !ok {
			return Null, false
		}
		if dot < 0 {
			return v, true
		}
		cur, path = v, path[dot+1:]
	}
}

// Set appends a field or replaces an existing field of the same name.
func (r *Record) Set(name string, v Value) {
	for i, n := range r.names {
		if n == name {
			r.vals[i] = v
			return
		}
	}
	r.names = append(r.names, name)
	r.vals = append(r.vals, v)
}

// sortedIdx returns the field indexes ordered by field name; it is used
// for order-insensitive comparison and hashing.
func (r *Record) sortedIdx() []int {
	idx := make([]int, len(r.names))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return r.names[idx[a]] < r.names[idx[b]] })
	return idx
}

// String renders the value in a JSON-like syntax (bags use {{ }}).
func (v Value) String() string {
	var b strings.Builder
	v.appendTo(&b)
	return b.String()
}

func (v Value) appendTo(b *strings.Builder) {
	switch v.kind {
	case KindNull:
		b.WriteString("null")
	case KindBool:
		b.WriteString(strconv.FormatBool(v.b))
	case KindInt:
		b.WriteString(strconv.FormatInt(v.i, 10))
	case KindDouble:
		if math.IsInf(v.f, 0) || math.IsNaN(v.f) {
			fmt.Fprintf(b, "%q", fmt.Sprint(v.f))
			return
		}
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		b.WriteString(s)
		if !strings.ContainsAny(s, ".eE") {
			b.WriteString(".0")
		}
	case KindString:
		b.WriteString(strconv.Quote(v.s))
	case KindList, KindBag:
		open, close := "[", "]"
		if v.kind == KindBag {
			open, close = "{{", "}}"
		}
		b.WriteString(open)
		for i, e := range v.elems {
			if i > 0 {
				b.WriteString(", ")
			}
			e.appendTo(b)
		}
		b.WriteString(close)
	case KindRecord:
		b.WriteByte('{')
		for i := 0; i < v.rec.Len(); i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			n, fv := v.rec.FieldAt(i)
			b.WriteString(strconv.Quote(n))
			b.WriteString(": ")
			fv.appendTo(b)
		}
		b.WriteByte('}')
	}
}

package optimizer

import "simdb/internal/algebra"

// tightBudgetThreshold is the per-query memory budget at or below which
// budget-aware physical rules prefer streaming algorithms over
// hash-based ones.
const tightBudgetThreshold int64 = 256 << 10

// hashGroupBudgetRule demotes /*+ hash */ group-bys to the sort-based
// group-by when the query's memory budget is very tight. The hash table
// holds every distinct group at once and, under such a budget, would
// spill and re-aggregate recursively; the sort-based path streams one
// group at a time and only the sort itself spills — strictly less
// run-file traffic for the same result.
func hashGroupBudgetRule(o *Optimizer, root *algebra.Op) (*algebra.Op, bool, error) {
	b := o.Opts.MemoryBudgetBytes
	if b <= 0 || b > tightBudgetThreshold {
		return root, false, nil
	}
	return rewriteEverywhere(root, func(op *algebra.Op) (*algebra.Op, bool, error) {
		if op.Kind != algebra.OpGroupBy || !op.HashHint {
			return op, false, nil
		}
		op.HashHint = false
		return op, true, nil
	})
}

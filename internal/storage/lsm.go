// Package storage implements SimDB's per-partition storage: LSM
// B+-trees made of an in-memory memtable plus immutable on-disk sorted
// components with bloom filters and fence keys, read through a
// node-wide LRU buffer cache. Primary indexes and secondary inverted
// indexes both sit on this substrate, as in AsterixDB ("partitioned
// LSM-based B+-trees with optional LSM-based secondary indexes").
//
// Writes never do disk I/O on the caller's goroutine: a Put lands in
// the active memtable, which rotates into an immutable generation when
// it fills; a background maintenance scheduler (a bounded worker pool,
// typically shared per node) flushes rotated memtables to disk
// components and compacts components under a pluggable MergePolicy.
// Writers only stall — with backpressure accounted in metrics — when
// maintenance falls far enough behind that immutable memtables or disk
// components pile past their thresholds.
package storage

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"simdb/internal/obs"
	"simdb/internal/obs/trace"
)

// Process-wide storage event metrics: flush/merge/rotation counts and
// durations stream into the default registry as they happen, and the
// write-stall counters expose backpressure (point-in-time state like
// memtable size is read on demand via Stats instead).
var (
	flushCount    = obs.C("storage.flush.count")
	flushNs       = obs.H("storage.flush.ns")
	flushBytes    = obs.H("storage.flush.bytes")
	mergeCount    = obs.C("storage.merge.count")
	mergeNs       = obs.H("storage.merge.ns")
	rotateCount   = obs.C("storage.rotate.count")
	stallCount    = obs.C("storage.stall.count")
	stallNs       = obs.H("storage.stall.ns")
	pendingFlushG = obs.G("storage.maintenance.pending_flushes")
	pendingMergeG = obs.G("storage.maintenance.pending_merges")
	maintFailedG  = obs.G("storage.maintenance.failed")
	quarantinedC  = obs.C("storage.recover.quarantined")
)

// LSMOptions configures an LSM tree.
type LSMOptions struct {
	// PageSize is the target data-page size of on-disk components.
	PageSize int
	// MemBudgetBytes rotates the active memtable into the flush queue
	// once its footprint exceeds this many bytes.
	MemBudgetBytes int64
	// MaxComponents parameterizes the default TieredPolicy: a full
	// size-tiered merge triggers when the component count exceeds it.
	MaxComponents int
	// Cache is the node's shared buffer cache. Required.
	Cache *BufferCache
	// Maintenance is the background flush/merge worker pool, typically
	// shared by every tree on a node. nil creates a private
	// single-worker scheduler owned (and closed) by the tree.
	Maintenance *Scheduler
	// MergePolicy decides background compaction. nil takes
	// TieredPolicy{MaxComponents}.
	MergePolicy MergePolicy
	// MaxImmutable is how many rotated-but-unflushed memtables may pile
	// up before Put stalls waiting for a flush (default 4).
	MaxImmutable int
	// StallComponents stalls writers when the disk-component count
	// reaches it, giving merges time to catch up (default
	// 4*MaxComponents).
	StallComponents int
	// FS routes the tree's file operations; nil takes OS. Crash-
	// recovery tests inject a fault-injecting filesystem here.
	FS VFS
	// WAL, when non-nil, write-ahead-logs every Put/Delete/PutMulti
	// under the name WALTree: acknowledged writes survive a crash and
	// are replayed into the memtable at open. One WAL is shared by a
	// partition's primary tree and its index trees so CommitGroup can
	// commit a row and its postings atomically. WALTree must be unique
	// among the WAL's trees and stable across restarts.
	WAL     *WAL
	WALTree string
	// Columnar makes flushes, merges, and bulk loads write version-2
	// columnar components (record values shredded into per-field columns
	// for projected scans). Reading is always version-agnostic: a tree
	// may hold row and columnar components side by side, so flipping the
	// flag — either way — is safe on existing data.
	Columnar bool
}

// componentSink abstracts the two component writers so the flush,
// merge, and bulk-load paths pick the output format from one place.
type componentSink interface {
	Add(key, value []byte) error
	Finish() error
	Abort()
}

// newComponentSink creates the configured component writer for path.
func (t *LSMTree) newComponentSink(path string) (componentSink, error) {
	if t.opts.Columnar {
		return NewColumnarComponentWriterFS(t.fs, path, t.opts.PageSize)
	}
	return NewComponentWriterFS(t.fs, path, t.opts.PageSize)
}

func (o *LSMOptions) withDefaults() LSMOptions {
	out := *o
	if out.PageSize <= 0 {
		out.PageSize = 32 << 10
	}
	if out.MemBudgetBytes <= 0 {
		out.MemBudgetBytes = 8 << 20
	}
	if out.MaxComponents <= 0 {
		out.MaxComponents = 8
	}
	if out.Cache == nil {
		out.Cache = NewBufferCache(32<<20, out.PageSize)
	}
	if out.MergePolicy == nil {
		out.MergePolicy = TieredPolicy{MaxComponents: out.MaxComponents}
	}
	if out.MaxImmutable <= 0 {
		out.MaxImmutable = 4
	}
	if out.StallComponents <= 0 {
		out.StallComponents = 4 * out.MaxComponents
	}
	if out.FS == nil {
		out.FS = OS
	}
	return out
}

// immMem is a rotated, immutable memtable awaiting flush. Its seq was
// allocated at rotation time, so flush completions install components
// in recency order no matter when the I/O finishes. When the tree is
// WAL-attached, minLSN/maxLSN bound the logged ops it holds: the flush
// syncs the log through maxLSN before writing (log-ahead-of-data) and
// checkpoints maxLSN after installing.
type immMem struct {
	mt             *memtable
	seq            uint64
	minLSN, maxLSN uint64
}

// LSMTree is a single partition's LSM B+-tree over byte keys and
// values. It is safe for concurrent use. Writes take an exclusive lock
// but never perform disk I/O: flush and merge run on the maintenance
// scheduler. Reads acquire a refcounted TreeSnapshot under a brief
// shared lock and then proceed lock-free, so a slow scan never blocks
// a concurrent Put, Flush, or Merge (see TreeSnapshot).
type LSMTree struct {
	dir     string
	opts    LSMOptions
	fs      VFS
	wal     *WAL
	walTree string

	mu   sync.RWMutex
	cond *sync.Cond // broadcast whenever maintenance makes progress

	mem        *memtable
	imms       []*immMem    // rotated memtables, newest first
	components []*Component // newest first
	nextSeq    uint64
	nextGen    uint64

	// LSN bounds of logged ops in the active memtable (0 = none).
	// Because appends and applies share the WAL's commitMu, ops enter
	// memtables in LSN order and every rotation boundary is an LSN
	// boundary — which is what lets a flush checkpoint "everything
	// through maxLSN" truthfully.
	memMinLSN, memMaxLSN uint64

	closed         bool
	lastErr        error // first background-maintenance failure; sticky
	flushScheduled bool  // a flush task is queued or running
	mergeActive    bool  // a merge (background or forced) is in flight

	bg       sync.WaitGroup // in-flight background tasks
	sched    *Scheduler
	ownSched bool

	// Test hooks, injected before concurrent use: called inside the
	// corresponding maintenance step, off the writer's goroutine.
	testFlushDelay func()
	testMergeDelay func()
}

// componentName renders a component file name: flushed (and
// bulk-loaded) components are c<seq>.cmp; merged components are
// c<seq>-<lo>m<gen>.cmp, sequenced at their newest input so recency
// order survives restart, with <lo> recording the oldest rotation
// sequence merged in. The range matters for crash recovery: a merge
// output that reached disk supersedes exactly the leftover inputs
// whose sequences its [lo, seq] interval contains — without it, a
// tombstone-dropping merge that crashed before removing its inputs
// would resurrect deleted keys on reopen.
// componentTmpSuffix marks a component file still being written. Every
// writer targets <name>.cmp.tmp and renames to the final name only
// after Finish has synced the data, so a crash mid-flush or mid-merge
// leaves a .tmp orphan (swept on the next open) rather than a torn
// component at a live name.
const componentTmpSuffix = ".tmp"

func componentName(seq, lo, gen uint64) string {
	if gen == 0 {
		return fmt.Sprintf("c%d.cmp", seq)
	}
	if lo != seq {
		return fmt.Sprintf("c%d-%dm%d.cmp", seq, lo, gen)
	}
	return fmt.Sprintf("c%dm%d.cmp", seq, gen)
}

// parseComponentName inverts componentName. Names without a range
// (flushed components, and merge outputs from before ranges existed)
// parse with lo == seq.
func parseComponentName(name string) (seq, lo, gen uint64, ok bool) {
	if !strings.HasPrefix(name, "c") || !strings.HasSuffix(name, ".cmp") {
		return 0, 0, 0, false
	}
	body := name[1 : len(name)-4]
	if i := strings.IndexByte(body, 'm'); i >= 0 {
		g, err := strconv.ParseUint(body[i+1:], 10, 64)
		if err != nil {
			return 0, 0, 0, false
		}
		gen = g
		body = body[:i]
	}
	if i := strings.IndexByte(body, '-'); i >= 0 {
		l, err := strconv.ParseUint(body[i+1:], 10, 64)
		if err != nil || gen == 0 {
			return 0, 0, 0, false
		}
		lo = l
		body = body[:i]
	}
	s, err := strconv.ParseUint(body, 10, 64)
	if err != nil {
		return 0, 0, 0, false
	}
	if lo == 0 || lo > s {
		lo = s
	}
	return s, lo, gen, true
}

// OpenLSM opens (or creates) the LSM tree stored in dir. Existing
// components are recovered in recency order: seq (rotation order)
// first, then merge generation. Recovery after an unclean stop repairs
// the directory rather than failing: a component whose [lo, seq] range
// is contained in an already-accepted (newer) component's range is a
// merge leftover and is deleted; a component that does not open —
// a flush or merge output torn mid-write — is quarantined (renamed
// *.bad) and its data recovered from the surviving inputs or the WAL.
// When a WAL is attached, the tree's checkpointed-but-unflushed ops
// replay into the memtable before the tree is returned.
func OpenLSM(dir string, opts LSMOptions) (*LSMTree, error) {
	o := opts.withDefaults()
	if err := o.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("storage: open lsm: %w", err)
	}
	t := &LSMTree{dir: dir, opts: o, fs: o.FS, mem: newMemtable(), nextSeq: 1, nextGen: 1}
	t.cond = sync.NewCond(&t.mu)
	if o.Maintenance != nil {
		t.sched = o.Maintenance
	} else {
		t.sched = NewScheduler(1)
		t.ownSched = true
	}
	names, err := o.FS.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type seqPath struct {
		seq, lo, gen uint64
		path         string
	}
	var found []seqPath
	dirty := false // namespace repairs pending a directory sync
	for _, name := range names {
		if strings.HasSuffix(name, componentTmpSuffix) {
			// A writer died between Create and the install rename.
			o.FS.Remove(filepath.Join(dir, name))
			dirty = true
			continue
		}
		seq, lo, gen, ok := parseComponentName(name)
		if !ok {
			continue
		}
		found = append(found, seqPath{seq, lo, gen, filepath.Join(dir, name)})
		// Never reuse a seen name, even a quarantined one's.
		if seq >= t.nextSeq {
			t.nextSeq = seq + 1
		}
		if gen >= t.nextGen {
			t.nextGen = gen + 1
		}
	}
	sort.Slice(found, func(i, j int) bool { // newest first
		if found[i].seq != found[j].seq {
			return found[i].seq > found[j].seq
		}
		return found[i].gen > found[j].gen
	})
	type failedOpen struct {
		sp  seqPath
		err error
	}
	var failed []failedOpen
	for _, sp := range found {
		superseded := false
		for _, acc := range t.components {
			if sp.lo >= acc.lo && sp.seq <= acc.seq {
				superseded = true
				break
			}
		}
		if superseded {
			// A merge leftover: its whole range is covered by an accepted
			// newer output (possible only after an unclean stop).
			o.FS.Remove(sp.path)
			dirty = true
			continue
		}
		c, err := OpenComponentFS(o.FS, sp.path, o.Cache)
		if err != nil {
			failed = append(failed, failedOpen{sp, err})
			continue
		}
		c.seq, c.gen, c.lo = sp.seq, sp.gen, sp.lo
		t.components = append(t.components, c)
	}
	for _, f := range failed {
		// A component that does not open is quarantined only when its
		// data survives elsewhere: a torn merge output's rotation range
		// is covered by its still-present inputs, and a torn flush
		// output's ops are still in the WAL. The latter is proven by the
		// flush-begin record this component's flush logged: its maxLSN
		// lies above the tree's durable checkpoint iff none of the
		// component's ops were checkpointed away (checkpoints advance
		// only after a successful install plus directory sync). Anything
		// else — e.g. bit rot of a long-checkpointed sole copy — must
		// surface, not silently vanish.
		recoverable := t.rangeCoveredLocked(f.sp.lo, f.sp.seq)
		if !recoverable && o.WAL != nil && o.WALTree != "" {
			recoverable = o.WAL.FlushCovered(o.WALTree, f.sp.seq)
		}
		if !recoverable {
			t.closeComponents()
			return nil, fmt.Errorf("storage: open lsm %s: component %s: %w",
				dir, filepath.Base(f.sp.path), f.err)
		}
		if rerr := o.FS.Rename(f.sp.path, f.sp.path+".bad"); rerr != nil {
			o.FS.Remove(f.sp.path)
		}
		dirty = true
		quarantinedC.Inc()
	}
	if dirty {
		if err := o.FS.SyncDir(dir); err != nil {
			t.closeComponents()
			return nil, fmt.Errorf("storage: open lsm %s: sync dir: %w", dir, err)
		}
	}
	if o.WAL != nil {
		t.wal = o.WAL
		t.walTree = o.WALTree
		if t.walTree == "" {
			t.closeComponents()
			return nil, fmt.Errorf("storage: open lsm %s: WAL set without WALTree", dir)
		}
		for _, op := range o.WAL.Attach(t.walTree) {
			if op.Tombstone {
				t.mem.del(op.Key)
			} else {
				t.mem.put(op.Key, op.Val)
			}
			if t.memMinLSN == 0 {
				t.memMinLSN = op.LSN
			}
			t.memMaxLSN = op.LSN
		}
		if t.mem.sizeBytes() >= o.MemBudgetBytes {
			t.rotateLocked() // no concurrency yet; schedules a background flush
		}
	}
	return t, nil
}

// rangeCoveredLocked reports whether every rotation seq in [lo, seq] is
// covered by some accepted component's range.
func (t *LSMTree) rangeCoveredLocked(lo, seq uint64) bool {
	next := lo
	for next <= seq {
		advanced := false
		for _, c := range t.components {
			if c.lo <= next && next <= c.seq {
				next = c.seq + 1
				advanced = true
				if next == 0 { // c.seq was MaxUint64
					return true
				}
			}
		}
		if !advanced {
			return false
		}
	}
	return true
}

func (t *LSMTree) closeComponents() {
	for _, c := range t.components {
		c.Close()
	}
	t.components = nil
}

// Close quiesces background maintenance, flushes every memtable
// generation (rotated and active) so acknowledged writes are durable,
// and closes all components. Idempotent. A WAL-attached tree must be
// closed before its WAL: the final flush checkpoints through the
// still-open log.
func (t *LSMTree) Close() error {
	if t.wal != nil {
		// Block in-flight CommitGroups: an op must not land in the
		// memtable after the final flush below has drained it.
		t.wal.commitMu.Lock()
		defer t.wal.commitMu.Unlock()
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()

	// In-flight maintenance observes the closed flag (or finishes its
	// current install, which is still safe: the component list is not
	// torn down until below) and exits.
	t.bg.Wait()

	t.mu.Lock()
	err := t.lastErr
	pendingFlushG.Add(-int64(len(t.imms)))
	if err == nil {
		// Final synchronous flush, oldest generation first, then the
		// active memtable.
		for len(t.imms) > 0 && err == nil {
			im := t.imms[len(t.imms)-1]
			var c *Component
			if c, err = t.writeMemtable(im); err == nil {
				t.components = append([]*Component{c}, t.components...)
				t.imms = t.imms[:len(t.imms)-1]
				if t.wal != nil && im.maxLSN > 0 {
					t.wal.Checkpoint(t.walTree, im.maxLSN)
				}
			}
		}
		if err == nil && t.mem.len() > 0 {
			im := &immMem{mt: t.mem, seq: t.nextSeq, minLSN: t.memMinLSN, maxLSN: t.memMaxLSN}
			t.nextSeq++
			t.mem = newMemtable()
			t.memMinLSN, t.memMaxLSN = 0, 0
			var c *Component
			if c, err = t.writeMemtable(im); err == nil {
				t.components = append([]*Component{c}, t.components...)
				if t.wal != nil && im.maxLSN > 0 {
					t.wal.Checkpoint(t.walTree, im.maxLSN)
				}
			}
		}
	}
	t.closeComponents()
	t.mu.Unlock()
	if t.ownSched {
		t.sched.Close()
	}
	return err
}

// Put inserts or replaces a key. It never performs disk I/O: at worst
// it rotates the full memtable into the background flush queue, and
// stalls only when maintenance has fallen behind the configured
// thresholds.
func (t *LSMTree) Put(key, value []byte) error {
	return t.write(key, value, false)
}

// Delete removes a key (writes a tombstone). Like Put, it never
// performs disk I/O on the caller's goroutine.
func (t *LSMTree) Delete(key []byte) error {
	return t.write(key, nil, true)
}

func (t *LSMTree) write(key, value []byte, tombstone bool) error {
	if t.wal != nil {
		return t.writeLogged([]walOp{{tree: t.walTree, key: key, val: value, tombstone: tombstone}})
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.writableLocked(); err != nil {
		return err
	}
	if tombstone {
		t.mem.del(key)
	} else {
		t.mem.put(key, value)
	}
	if t.mem.sizeBytes() >= t.opts.MemBudgetBytes {
		t.rotateLocked()
	}
	return nil
}

// writableLocked rejects writes to a closed or failed tree and applies
// stall backpressure.
func (t *LSMTree) writableLocked() error {
	if t.closed {
		return fmt.Errorf("storage: write to closed tree %s", t.dir)
	}
	if t.lastErr != nil {
		return t.lastErr
	}
	return t.stallLocked()
}

// writeLogged is the write path for a WAL-attached tree: append the
// commit record and apply it to the memtable while holding the WAL's
// commitMu, so ops land in memtables in LSN order; then (commit mode)
// wait for the group-commit fsync before acknowledging.
func (t *LSMTree) writeLogged(ops []walOp) error {
	w := t.wal
	w.commitMu.Lock()
	t.mu.Lock()
	if err := t.writableLocked(); err != nil {
		t.mu.Unlock()
		w.commitMu.Unlock()
		return err
	}
	lsn, err := w.appendOps(ops)
	if err != nil {
		t.mu.Unlock()
		w.commitMu.Unlock()
		return err
	}
	t.applyLoggedLocked(ops, lsn)
	t.mu.Unlock()
	w.commitMu.Unlock()
	return w.WaitDurable(lsn)
}

// applyLoggedLocked lands already-logged ops in the memtable, tracking
// the LSN bounds a later flush will sync and checkpoint. Caller holds
// the WAL's commitMu and t.mu.
func (t *LSMTree) applyLoggedLocked(ops []walOp, lsn uint64) {
	for _, op := range ops {
		if op.tombstone {
			t.mem.del(op.key)
		} else {
			t.mem.put(op.key, op.val)
		}
	}
	if t.memMinLSN == 0 {
		t.memMinLSN = lsn
	}
	t.memMaxLSN = lsn
	if t.mem.sizeBytes() >= t.opts.MemBudgetBytes {
		t.rotateLocked()
	}
}

// GroupWrite is one tree's write inside an atomic cross-tree commit.
type GroupWrite struct {
	Tree      *LSMTree
	Key, Val  []byte
	Tombstone bool
}

// CommitGroup logs one commit record spanning several trees attached
// to the same WAL — a primary row and its secondary-index postings —
// and applies it to their memtables. Recovery replays the record
// entirely or not at all, so the trees stay mutually consistent across
// a crash. It does not wait for durability: callers acknowledge after
// WaitDurable on the returned LSN, letting a batch share one fsync.
func CommitGroup(w *WAL, writes []GroupWrite) (uint64, error) {
	if len(writes) == 0 {
		return 0, nil
	}
	w.commitMu.Lock()
	defer w.commitMu.Unlock()
	ops := make([]walOp, len(writes))
	for i, wr := range writes {
		if wr.Tree.wal != w {
			return 0, fmt.Errorf("storage: CommitGroup tree %s not attached to wal %s", wr.Tree.dir, w.dir)
		}
		ops[i] = walOp{tree: wr.Tree.walTree, key: wr.Key, val: wr.Val, tombstone: wr.Tombstone}
	}
	// Stall/validate every tree up front. Releasing a tree's lock after
	// its stall clears is safe: all writers to these trees serialize on
	// commitMu, so only flushes (which shrink, never grow) can touch
	// them before we apply below.
	for i, wr := range writes {
		if i > 0 && wr.Tree == writes[i-1].Tree {
			continue
		}
		wr.Tree.mu.Lock()
		err := wr.Tree.writableLocked()
		wr.Tree.mu.Unlock()
		if err != nil {
			return 0, err
		}
	}
	lsn, err := w.appendOps(ops)
	if err != nil {
		return 0, err
	}
	for i := 0; i < len(writes); {
		j := i
		for j < len(writes) && writes[j].Tree == writes[i].Tree {
			j++
		}
		tr := writes[i].Tree
		tr.mu.Lock()
		tr.applyLoggedLocked(ops[i:j], lsn)
		tr.mu.Unlock()
		i = j
	}
	return lsn, nil
}

// CommitGroups commits many independent atomic groups in one pass:
// every group still gets its own commit record and LSN, so recovery
// applies each all-or-nothing exactly as with CommitGroup, but LSN
// assignment, the log append, and the syncer wakeup happen once for the
// whole batch. Batched ingestion commits a chunk of records this way —
// per-record CommitGroup calls dominate the group-commit overhead
// otherwise. Returns one LSN per group, in order. Like CommitGroup it
// does not wait for durability.
func CommitGroups(w *WAL, groups [][]GroupWrite) ([]uint64, error) {
	if len(groups) == 0 {
		return nil, nil
	}
	w.commitMu.Lock()
	defer w.commitMu.Unlock()
	total := 0
	for gi, writes := range groups {
		if len(writes) == 0 {
			return nil, fmt.Errorf("storage: CommitGroups: empty group %d", gi)
		}
		total += len(writes)
	}
	// One backing array for every group's ops: per-group slices would
	// cost an allocation per record on the batched-ingest hot path.
	opsBuf := make([]walOp, 0, total)
	opGroups := make([][]walOp, len(groups))
	for gi, writes := range groups {
		start := len(opsBuf)
		for _, wr := range writes {
			if wr.Tree.wal != w {
				return nil, fmt.Errorf("storage: CommitGroups tree %s not attached to wal %s", wr.Tree.dir, w.dir)
			}
			opsBuf = append(opsBuf, walOp{tree: wr.Tree.walTree, key: wr.Key, val: wr.Val, tombstone: wr.Tombstone})
		}
		opGroups[gi] = opsBuf[start:len(opsBuf):len(opsBuf)]
	}
	// Stall/validate every distinct tree up front (see CommitGroup for
	// why dropping the lock between the check and the apply is safe).
	var checked [4]*LSMTree // groups touch few distinct trees
	seen := checked[:0]
	for _, writes := range groups {
		for _, wr := range writes {
			dup := false
			for _, tr := range seen {
				if tr == wr.Tree {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen = append(seen, wr.Tree)
			wr.Tree.mu.Lock()
			err := wr.Tree.writableLocked()
			wr.Tree.mu.Unlock()
			if err != nil {
				return nil, err
			}
		}
	}
	first, err := w.appendOpsBatch(opGroups)
	if err != nil {
		return nil, err
	}
	lsns := make([]uint64, len(groups))
	// Apply with the tree lock held across consecutive runs of the same
	// tree — for a chunk of single-tree groups this is one lock
	// acquisition per chunk instead of one per record.
	var cur *LSMTree
	for gi, writes := range groups {
		lsn := first + uint64(gi)
		lsns[gi] = lsn
		ops := opGroups[gi]
		for i := 0; i < len(writes); {
			j := i
			for j < len(writes) && writes[j].Tree == writes[i].Tree {
				j++
			}
			tr := writes[i].Tree
			if tr != cur {
				if cur != nil {
					cur.mu.Unlock()
				}
				tr.mu.Lock()
				cur = tr
			}
			tr.applyLoggedLocked(ops[i:j], lsn)
			i = j
		}
	}
	if cur != nil {
		cur.mu.Unlock()
	}
	return lsns, nil
}

// PutMulti applies several puts under a single lock acquisition and
// stall check — the batched-ingest fast path for secondary indexes,
// where one record expands to many small (token, pk) entries. values
// may be nil, meaning every key maps to a nil value. Like Put, it
// never performs disk I/O on the caller's goroutine; the memtable may
// overshoot its budget by the batch's footprint before rotating.
func (t *LSMTree) PutMulti(keys [][]byte, values [][]byte) error {
	if len(keys) == 0 {
		return nil
	}
	if t.wal != nil {
		ops := make([]walOp, len(keys))
		for i, k := range keys {
			ops[i] = walOp{tree: t.walTree, key: k}
			if values != nil {
				ops[i].val = values[i]
			}
		}
		return t.writeLogged(ops)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.writableLocked(); err != nil {
		return err
	}
	for i, k := range keys {
		var v []byte
		if values != nil {
			v = values[i]
		}
		t.mem.put(k, v)
	}
	if t.mem.sizeBytes() >= t.opts.MemBudgetBytes {
		t.rotateLocked()
	}
	return nil
}

// stallLocked applies write backpressure: it blocks while rotated
// memtables or disk components have piled past their thresholds and
// maintenance is still able to make progress.
func (t *LSMTree) stallLocked() error {
	if len(t.imms) < t.opts.MaxImmutable && len(t.components) < t.opts.StallComponents {
		return nil
	}
	stallCount.Inc()
	start := time.Now()
	defer func() { stallNs.Observe(time.Since(start).Nanoseconds()) }()
	for {
		if t.closed {
			return fmt.Errorf("storage: write to closed tree %s", t.dir)
		}
		if t.lastErr != nil {
			return t.lastErr
		}
		if len(t.imms) < t.opts.MaxImmutable && len(t.components) < t.opts.StallComponents {
			return nil
		}
		t.scheduleFlushLocked()
		t.maybeScheduleMergeLocked()
		if !t.flushScheduled && !t.mergeActive {
			// Nothing can make progress (e.g. a policy that refuses to
			// merge below the stall threshold): admit the write rather
			// than deadlock.
			return nil
		}
		t.cond.Wait()
	}
}

// rotateLocked moves the active memtable into the immutable flush
// queue, stamping it with the component seq its flush will use, and
// schedules a background flush.
func (t *LSMTree) rotateLocked() {
	if t.mem.len() == 0 {
		return
	}
	t.imms = append([]*immMem{{
		mt: t.mem, seq: t.nextSeq,
		minLSN: t.memMinLSN, maxLSN: t.memMaxLSN,
	}}, t.imms...)
	t.nextSeq++
	t.mem = newMemtable()
	t.memMinLSN, t.memMaxLSN = 0, 0
	rotateCount.Inc()
	pendingFlushG.Add(1)
	t.scheduleFlushLocked()
}

// scheduleFlushLocked queues the flush task unless one is already
// queued or running.
func (t *LSMTree) scheduleFlushLocked() {
	if t.flushScheduled || t.closed || t.lastErr != nil || len(t.imms) == 0 {
		return
	}
	t.flushScheduled = true
	t.bg.Add(1)
	if !t.sched.Submit(t.flushTask) {
		// Scheduler already closed (tree torn down out of order):
		// Close's final synchronous flush picks the memtables up.
		t.flushScheduled = false
		t.bg.Done()
	}
}

// flushTask drains the immutable-memtable queue oldest-first, so every
// installed component is newer than all disk components beneath it.
// One flush task runs per tree at a time; parallelism comes from
// flushing many trees (partitions) at once on the shared scheduler.
func (t *LSMTree) flushTask() {
	defer t.bg.Done()
	for {
		t.mu.Lock()
		if t.closed || t.lastErr != nil || len(t.imms) == 0 {
			t.flushScheduled = false
			t.maybeScheduleMergeLocked()
			t.cond.Broadcast()
			t.mu.Unlock()
			return
		}
		im := t.imms[len(t.imms)-1]
		delay := t.testFlushDelay
		t.mu.Unlock()

		if delay != nil {
			delay()
		}
		c, err := t.writeMemtable(im)

		t.mu.Lock()
		if err != nil {
			t.setErrLocked(err)
			t.flushScheduled = false
			t.cond.Broadcast()
			t.mu.Unlock()
			return
		}
		t.components = append([]*Component{c}, t.components...)
		t.imms = t.imms[:len(t.imms)-1]
		pendingFlushG.Add(-1)
		if t.wal != nil && im.maxLSN > 0 {
			// The flushed prefix is on disk: the WAL may skip it at
			// replay and retire segments wholly below it.
			t.wal.Checkpoint(t.walTree, im.maxLSN)
		}
		t.cond.Broadcast()
		t.mu.Unlock()
	}
}

// setErrLocked records the first background-maintenance failure and
// counts the transition in the storage.maintenance.failed gauge (the
// number of trees wedged on a sticky error).
func (t *LSMTree) setErrLocked(err error) {
	if t.lastErr == nil && err != nil {
		t.lastErr = err
		maintFailedG.Add(1)
	}
}

// writeMemtable writes one immutable memtable to a new disk component.
// The memtable is frozen, so no lock is needed while writing. For a
// WAL-attached tree it first logs a flush-begin record and syncs the
// log through it (log-ahead-of-data): a component must never hold ops
// whose WAL record could be lost, or a crash would break the
// cross-tree atomicity the shared log provides. The durable
// flush-begin also binds this component's seq to its LSN range so
// recovery can prove whether replay covers a torn install. The install
// rename is followed by a directory sync — only then may the
// checkpoint retire the flushed prefix, or a power loss could drop the
// renamed entry after the checkpoint became durable.
func (t *LSMTree) writeMemtable(im *immMem) (*Component, error) {
	start := time.Now()
	if t.wal != nil && im.maxLSN > 0 {
		fb, err := t.wal.FlushBegin(t.walTree, im.seq, im.maxLSN)
		if err != nil {
			return nil, err
		}
		if err := t.wal.SyncThrough(fb); err != nil {
			return nil, err
		}
	}
	path := filepath.Join(t.dir, componentName(im.seq, im.seq, 0))
	cw, err := t.newComponentSink(path + componentTmpSuffix)
	if err != nil {
		return nil, err
	}
	for _, kv := range im.mt.snapshotRange(nil, nil) {
		if err := cw.Add([]byte(kv.key), encodeEntry(kv.e)); err != nil {
			cw.Abort()
			return nil, err
		}
	}
	if err := cw.Finish(); err != nil {
		return nil, err
	}
	if err := t.fs.Rename(path+componentTmpSuffix, path); err != nil {
		return nil, err
	}
	if err := t.fs.SyncDir(t.dir); err != nil {
		return nil, err
	}
	c, err := OpenComponentFS(t.fs, path, t.opts.Cache)
	if err != nil {
		return nil, err
	}
	c.seq, c.lo = im.seq, im.seq
	flushCount.Inc()
	flushNs.Observe(time.Since(start).Nanoseconds())
	flushBytes.Observe(c.SizeBytes())
	trace.Default().Event("flush", trace.CatStorage, t.dir, start, time.Since(start),
		trace.I("bytes", c.SizeBytes()), trace.I("entries", c.Len()))
	return c, nil
}

// Flush synchronously forces every memtable generation to disk: it
// rotates the active memtable and waits for the background flusher to
// drain the queue.
func (t *LSMTree) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushSyncLocked()
}

func (t *LSMTree) flushSyncLocked() error {
	if t.closed {
		return fmt.Errorf("storage: flush of closed tree %s", t.dir)
	}
	t.rotateLocked()
	for len(t.imms) > 0 {
		if t.lastErr != nil {
			return t.lastErr
		}
		if t.closed {
			return fmt.Errorf("storage: flush of closed tree %s", t.dir)
		}
		t.scheduleFlushLocked()
		t.cond.Wait()
	}
	return t.lastErr
}

// Quiesce blocks until this tree has no pending background
// maintenance: the flush queue is drained and the merge policy is
// satisfied. Shutdown paths and tests use it to make the tree's shape
// deterministic before inspecting or tearing down components.
func (t *LSMTree) Quiesce() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.closed {
			return nil
		}
		if t.lastErr != nil {
			return t.lastErr
		}
		t.scheduleFlushLocked()
		t.maybeScheduleMergeLocked()
		if len(t.imms) == 0 && !t.flushScheduled && !t.mergeActive {
			return nil
		}
		t.cond.Wait()
	}
}

// componentStatsLocked summarizes the disk components for the merge
// policy, newest first.
func (t *LSMTree) componentStatsLocked() []ComponentStats {
	out := make([]ComponentStats, len(t.components))
	for i, c := range t.components {
		out[i] = ComponentStats{Entries: c.Len(), Bytes: c.SizeBytes()}
	}
	return out
}

// maybeScheduleMergeLocked queues the merge task when the policy wants
// one and no merge is already in flight.
func (t *LSMTree) maybeScheduleMergeLocked() {
	if t.mergeActive || t.closed || t.lastErr != nil {
		return
	}
	if t.opts.MergePolicy.Pick(t.componentStatsLocked()) <= 1 {
		return
	}
	t.mergeActive = true
	pendingMergeG.Add(1)
	t.bg.Add(1)
	if !t.sched.Submit(t.mergeTask) {
		t.mergeActive = false
		pendingMergeG.Add(-1)
		t.bg.Done()
	}
}

// mergeTask runs one policy-chosen merge in the background.
func (t *LSMTree) mergeTask() {
	defer t.bg.Done()
	t.mu.Lock()
	if t.closed || t.lastErr != nil {
		t.finishMergeLocked()
		t.mu.Unlock()
		return
	}
	n := t.opts.MergePolicy.Pick(t.componentStatsLocked())
	if n <= 1 || n > len(t.components) {
		t.finishMergeLocked()
		t.mu.Unlock()
		return
	}
	inputs := append([]*Component(nil), t.components[:n]...)
	drop := n == len(t.components)
	delay := t.testMergeDelay
	t.mu.Unlock()

	err := t.mergeComponents(inputs, drop, delay)

	t.mu.Lock()
	t.setErrLocked(err)
	t.finishMergeLocked()
	t.maybeScheduleMergeLocked() // policies may want another round
	t.mu.Unlock()
}

func (t *LSMTree) finishMergeLocked() {
	t.mergeActive = false
	pendingMergeG.Add(-1)
	t.cond.Broadcast()
}

// mergeComponents merges the given newest-prefix of the component list
// into one component, installs it in the inputs' place, and retires
// the inputs. Tombstones are dropped only when drop is set (the inputs
// covered every component, so nothing older can resurface). Runs
// without the tree lock except for the install; concurrent flushes may
// prepend newer components meanwhile, which the positional install
// tolerates.
func (t *LSMTree) mergeComponents(inputs []*Component, drop bool, delay func()) error {
	start := time.Now()
	seq := inputs[0].seq
	lo := inputs[len(inputs)-1].lo
	t.mu.Lock()
	gen := t.nextGen
	t.nextGen++
	t.mu.Unlock()

	path := filepath.Join(t.dir, componentName(seq, lo, gen))
	cw, err := t.newComponentSink(path + componentTmpSuffix)
	if err != nil {
		return err
	}
	iters := make([]*Iterator, len(inputs))
	for i, c := range inputs {
		iters[i] = c.NewIterator(nil, nil)
	}
	merge := newMergeIter(iters)
	for merge.next() {
		if _, dead := decodeEntry(merge.val); dead && drop {
			continue
		}
		if err := cw.Add(merge.key, merge.val); err != nil {
			cw.Abort()
			return err
		}
	}
	if merge.err != nil {
		cw.Abort()
		return merge.err
	}
	if delay != nil {
		delay()
	}
	if err := cw.Finish(); err != nil {
		return err
	}
	if err := t.fs.Rename(path+componentTmpSuffix, path); err != nil {
		return err
	}
	if err := t.fs.SyncDir(t.dir); err != nil {
		return err
	}
	c, err := OpenComponentFS(t.fs, path, t.opts.Cache)
	if err != nil {
		return err
	}
	c.seq, c.gen, c.lo = seq, gen, lo

	t.mu.Lock()
	i := 0
	for i < len(t.components) && t.components[i] != inputs[0] {
		i++
	}
	if i+len(inputs) > len(t.components) {
		// The inputs are no longer a contiguous span of the list: the
		// tree was mutated in a way only shutdown can cause. Discard
		// the merge output rather than corrupt the list.
		t.mu.Unlock()
		c.Remove()
		return nil
	}
	newList := make([]*Component, 0, len(t.components)-len(inputs)+1)
	newList = append(newList, t.components[:i]...)
	newList = append(newList, c)
	newList = append(newList, t.components[i+len(inputs):]...)
	t.components = newList
	t.cond.Broadcast()
	t.mu.Unlock()

	var firstErr error
	for _, oc := range inputs {
		if err := oc.Remove(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	mergeCount.Inc()
	mergeNs.Observe(time.Since(start).Nanoseconds())
	trace.Default().Event("merge", trace.CatStorage, t.dir, start, time.Since(start),
		trace.I("inputs", int64(len(inputs))), trace.I("bytes", c.SizeBytes()))
	return firstErr
}

// Merge forces a full compaction: flush everything, then merge every
// disk component into one. It waits for any in-flight background merge
// first and runs the compaction on the caller's goroutine.
func (t *LSMTree) Merge() error {
	t.mu.Lock()
	if err := t.flushSyncLocked(); err != nil {
		t.mu.Unlock()
		return err
	}
	for t.mergeActive {
		t.cond.Wait()
		if t.closed || t.lastErr != nil {
			err := t.lastErr
			t.mu.Unlock()
			return err
		}
	}
	if len(t.components) <= 1 {
		t.mu.Unlock()
		return nil
	}
	t.mergeActive = true
	pendingMergeG.Add(1)
	inputs := append([]*Component(nil), t.components...)
	delay := t.testMergeDelay
	t.mu.Unlock()

	err := t.mergeComponents(inputs, true, delay)

	t.mu.Lock()
	t.setErrLocked(err)
	t.finishMergeLocked()
	t.mu.Unlock()
	return err
}

// encodeEntry prefixes a component value with a tombstone flag byte.
func encodeEntry(e memEntry) []byte {
	out := make([]byte, 1+len(e.value))
	if e.tombstone {
		out[0] = 1
	}
	copy(out[1:], e.value)
	return out
}

func decodeEntry(v []byte) (value []byte, tombstone bool) {
	if len(v) == 0 {
		return nil, true
	}
	return v[1:], v[0] == 1
}

// mergeIter merges component iterators newest-first: on equal keys the
// lower-indexed (newer) iterator wins and older duplicates are skipped.
type mergeIter struct {
	iters []*Iterator
	valid []bool
	key   []byte
	val   []byte
	err   error
}

func newMergeIter(iters []*Iterator) *mergeIter {
	m := &mergeIter{iters: iters, valid: make([]bool, len(iters))}
	for i, it := range iters {
		m.valid[i] = it.Next()
		if it.Err() != nil {
			m.err = it.Err()
		}
	}
	return m
}

func (m *mergeIter) next() bool {
	if m.err != nil {
		return false
	}
	best := -1
	for i, ok := range m.valid {
		if !ok {
			continue
		}
		if best < 0 || bytes.Compare(m.iters[i].Key(), m.iters[best].Key()) < 0 {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	m.key = append(m.key[:0], m.iters[best].Key()...)
	m.val = append(m.val[:0], m.iters[best].Value()...)
	// Advance the winner and any older iterator positioned on the same key.
	for i := range m.iters {
		if !m.valid[i] {
			continue
		}
		if i == best || bytes.Equal(m.iters[i].Key(), m.key) {
			m.valid[i] = m.iters[i].Next()
			if err := m.iters[i].Err(); err != nil {
				m.err = err
				return false
			}
		}
	}
	return true
}

// Get returns the newest value for key, consulting the memtable
// generations first and then disk components newest-first through
// their bloom filters. It holds the tree lock only while acquiring a
// snapshot.
func (t *LSMTree) Get(key []byte) ([]byte, bool, error) {
	s := t.Snapshot()
	defer s.Close()
	return s.Get(key)
}

// Scan calls fn for each live (key, value) with key in [start, end) in
// key order, merging every memtable generation and all components. fn
// must not retain its arguments. Iteration stops early if fn returns
// false. fn runs with no tree lock held — it may take arbitrarily long
// without blocking writers.
func (t *LSMTree) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	return t.ScanContext(nil, start, end, fn)
}

// ScanContext is Scan with cooperative cancellation: once ctx is
// cancelled the scan stops within a few hundred entries and returns
// ctx's error. A nil ctx behaves like Scan.
func (t *LSMTree) ScanContext(ctx context.Context, start, end []byte, fn func(key, value []byte) bool) error {
	s := t.Snapshot()
	defer s.Close()
	return s.Scan(ctx, start, end, fn)
}

// ScanProjectedContext is ScanContext restricted to the named top-level
// record fields: columnar components read only the referenced column
// blocks and deliver partial records, while memtables and row-format
// components deliver full entries. fn therefore receives values
// guaranteed to contain at least the projected fields; it must not
// assume the others are absent. A nil fields slice scans everything.
func (t *LSMTree) ScanProjectedContext(ctx context.Context, start, end []byte, fields []string, fn func(key, value []byte) bool) error {
	s := t.Snapshot()
	defer s.Close()
	return s.ScanProjected(ctx, start, end, fields, fn)
}

// BulkLoad streams pre-sorted entries directly into a single on-disk
// component, bypassing the memtable — the fast path dataset and index
// builds use (AsterixDB bulk-loads secondary indexes the same way).
// next must yield strictly increasing keys and return ok=false at the
// end. The tree must be empty.
func (t *LSMTree) BulkLoad(next func() (key, value []byte, ok bool, err error)) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.mem.len() != 0 || len(t.imms) != 0 || len(t.components) != 0 {
		return fmt.Errorf("storage: bulk load into non-empty tree")
	}
	path := filepath.Join(t.dir, componentName(t.nextSeq, t.nextSeq, 0))
	cw, err := t.newComponentSink(path + componentTmpSuffix)
	if err != nil {
		return err
	}
	n := 0
	for {
		k, v, ok, err := next()
		if err != nil {
			cw.Abort()
			return err
		}
		if !ok {
			break
		}
		entry := make([]byte, 1+len(v))
		copy(entry[1:], v)
		if err := cw.Add(k, entry); err != nil {
			cw.Abort()
			return err
		}
		n++
	}
	if n == 0 {
		cw.Abort()
		return nil
	}
	if err := cw.Finish(); err != nil {
		return err
	}
	if err := t.fs.Rename(path+componentTmpSuffix, path); err != nil {
		return err
	}
	if err := t.fs.SyncDir(t.dir); err != nil {
		return err
	}
	c, err := OpenComponentFS(t.fs, path, t.opts.Cache)
	if err != nil {
		return err
	}
	c.seq, c.lo = t.nextSeq, t.nextSeq
	t.components = []*Component{c}
	t.nextSeq++
	return nil
}

// Stats describes the tree's current shape.
type Stats struct {
	MemEntries     int   // active memtable
	MemBytes       int64 // active memtable footprint
	ImmMemtables   int   // rotated memtables awaiting flush
	ImmEntries     int   // entries across rotated memtables
	ImmBytes       int64 // footprint across rotated memtables
	DiskComponents int
	DiskEntries    int64
	DiskBytes      int64
}

// Stats returns a snapshot of the tree's shape and footprint; Table 5's
// index sizes come from DiskBytes.
func (t *LSMTree) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := Stats{
		MemEntries:     t.mem.len(),
		MemBytes:       t.mem.sizeBytes(),
		ImmMemtables:   len(t.imms),
		DiskComponents: len(t.components),
	}
	for _, im := range t.imms {
		s.ImmEntries += im.mt.len()
		s.ImmBytes += im.mt.sizeBytes()
	}
	for _, c := range t.components {
		s.DiskEntries += c.Len()
		s.DiskBytes += c.SizeBytes()
	}
	return s
}

// Len returns the approximate number of live entries (disk entries may
// include shadowed versions until a merge).
func (t *LSMTree) Len() int64 {
	s := t.Stats()
	return int64(s.MemEntries) + int64(s.ImmEntries) + s.DiskEntries
}

// Package hyracks is SimDB's parallel dataflow runtime, modeled on the
// Hyracks layer the paper's AsterixDB executes on: a job is a DAG of
// operators and connectors; each operator runs as one goroutine per
// partition; connectors (one-to-one, hash repartition, hash repartition
// merge, broadcast, merge-to-coordinator) move tuple frames between
// partitions over channels that double as the simulated cluster
// network, counting every cross-node byte.
package hyracks

import (
	"context"
	"sort"
	"sync"
	"time"

	"simdb/internal/adm"
)

// Tuple is one row: a positional list of values. Columns are bound to
// variable names at plan-compile time; the runtime deals in positions.
type Tuple []adm.Value

// Clone returns a shallow copy of the tuple (values are immutable).
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// EncodedSize returns the tuple's wire size under the adm binary
// encoding; connectors charge this many bytes for cross-node hops.
func (t Tuple) EncodedSize() int {
	n := 0
	for _, v := range t {
		n += adm.EncodedSize(v)
	}
	return n
}

// frame is a batch of tuples moved through a channel in one send.
type frame struct {
	tuples []Tuple
}

// DefaultFrameSize is the tuple batch size per connector send when
// Topology.FrameSize is unset.
const DefaultFrameSize = 128

// DefaultChanCap is the per-channel frame buffer (backpressure bound)
// when Topology.ChanCap is unset. The TCP transport mirrors this bound
// as its per-stream flow-control credit window.
const DefaultChanCap = 4

// SortCol names a sort column and direction for merging connectors and
// sort operators.
type SortCol struct {
	Col  int
	Desc bool
}

// CompareTuples orders two tuples by the given sort columns.
func CompareTuples(a, b Tuple, cols []SortCol) int {
	for _, sc := range cols {
		c := adm.Compare(a[sc.Col], b[sc.Col])
		if sc.Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// PortReader delivers the tuples arriving at one input port of one
// operator instance. Plain ports multiplex every producer into one
// channel; merging ports keep one channel per producer and k-way merge
// them by sort order. Readers track time blocked on the network so the
// executor can compute operator busy time.
type PortReader struct {
	ctx     context.Context
	ch      chan frame   // plain port
	chans   []chan frame // merging port: one per producer
	mergeBy []SortCol
	waitNs  *int64
	state   *instanceState
	portIdx int

	// tuplesIn counts tuples delivered through this port. It is owned by
	// the reading instance's goroutine (no atomics needed) and summed
	// into the operator profile when the instance finishes.
	tuplesIn int64

	buf    []Tuple
	bufPos int

	// merge state
	heads  []Tuple
	inited bool
	bufs   [][]Tuple
	poss   []int

	// one is NextBatch's reusable single-tuple batch for merging ports.
	one [1]Tuple
}

// Next returns the next tuple, or ok=false when the port is exhausted
// or the job is cancelled.
func (r *PortReader) Next() (Tuple, bool) {
	if r.chans != nil {
		return r.nextMerged()
	}
	for r.bufPos >= len(r.buf) {
		t0 := time.Now()
		r.state.set("recv", r.portIdx, r.ch)
		select {
		case f, ok := <-r.ch:
			r.state.clear()
			*r.waitNs += time.Since(t0).Nanoseconds()
			if !ok {
				return nil, false
			}
			r.buf = f.tuples
			r.bufPos = 0
		case <-r.ctx.Done():
			r.state.clear()
			*r.waitNs += time.Since(t0).Nanoseconds()
			return nil, false
		}
	}
	t := r.buf[r.bufPos]
	r.bufPos++
	r.tuplesIn++
	return t, true
}

// NextBatch returns the next run of tuples from the port: the unread
// remainder of the current frame for plain ports (zero-copy, up to one
// frame's worth), or a single tuple for merging ports (batching
// would break the merge order). ok=false means exhausted or cancelled,
// like Next. The returned slice is valid only until the next call;
// batch-oriented operators iterate it in place to amortize per-tuple
// dispatch without changing delivery order.
func (r *PortReader) NextBatch() ([]Tuple, bool) {
	if r.chans != nil {
		t, ok := r.nextMerged()
		if !ok {
			return nil, false
		}
		r.one[0] = t
		return r.one[:], true
	}
	for r.bufPos >= len(r.buf) {
		t0 := time.Now()
		r.state.set("recv", r.portIdx, r.ch)
		select {
		case f, ok := <-r.ch:
			r.state.clear()
			*r.waitNs += time.Since(t0).Nanoseconds()
			if !ok {
				return nil, false
			}
			r.buf = f.tuples
			r.bufPos = 0
		case <-r.ctx.Done():
			r.state.clear()
			*r.waitNs += time.Since(t0).Nanoseconds()
			return nil, false
		}
	}
	batch := r.buf[r.bufPos:]
	r.bufPos = len(r.buf)
	r.tuplesIn += int64(len(batch))
	return batch, true
}

// Drain consumes and discards any remaining input (used on early exit
// so producers do not block forever on a full channel).
func (r *PortReader) Drain() {
	for {
		if _, ok := r.Next(); !ok {
			return
		}
	}
}

func (r *PortReader) nextMerged() (Tuple, bool) {
	if !r.inited {
		r.inited = true
		r.heads = make([]Tuple, len(r.chans))
		r.bufs = make([][]Tuple, len(r.chans))
		r.poss = make([]int, len(r.chans))
		for i := range r.chans {
			r.advance(i)
		}
	}
	best := -1
	for i, h := range r.heads {
		if h == nil {
			continue
		}
		if best < 0 || CompareTuples(h, r.heads[best], r.mergeBy) < 0 {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	t := r.heads[best]
	r.advance(best)
	r.tuplesIn++
	return t, true
}

// advance loads the next tuple from producer stream i into heads[i].
func (r *PortReader) advance(i int) {
	for r.poss[i] >= len(r.bufs[i]) {
		t0 := time.Now()
		r.state.set("recv-merge", r.portIdx, r.chans[i])
		select {
		case f, ok := <-r.chans[i]:
			r.state.clear()
			*r.waitNs += time.Since(t0).Nanoseconds()
			if !ok {
				r.heads[i] = nil
				return
			}
			r.bufs[i] = f.tuples
			r.poss[i] = 0
		case <-r.ctx.Done():
			r.state.clear()
			*r.waitNs += time.Since(t0).Nanoseconds()
			r.heads[i] = nil
			return
		}
	}
	r.heads[i] = r.bufs[i][r.poss[i]]
	r.poss[i]++
}

// refCountedChan closes ch after done() has been called by every
// producer feeding it.
type refCountedChan struct {
	ch        chan frame
	remaining int
	mu        sync.Mutex
}

func (rc *refCountedChan) done() {
	rc.mu.Lock()
	rc.remaining--
	last := rc.remaining == 0
	rc.mu.Unlock()
	if last {
		close(rc.ch)
	}
}

// sendCtx sends f on ch unless the context is cancelled; it reports the
// nanoseconds spent blocked.
func sendCtx(ctx context.Context, ch chan frame, f frame) int64 {
	t0 := time.Now()
	select {
	case ch <- f:
	case <-ctx.Done():
	}
	return time.Since(t0).Nanoseconds()
}

// sortTuples sorts ts in place by the sort columns.
func sortTuples(ts []Tuple, cols []SortCol) {
	sort.SliceStable(ts, func(i, j int) bool {
		return CompareTuples(ts[i], ts[j], cols) < 0
	})
}

package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// The profile query used by the tests below: an index-eligible Jaccard
// selection over the Figure 1 reviews.
const profileQuery = `
	for $r in dataset Reviews
	where similarity-jaccard(word-tokens($r.summary),
	                         word-tokens('great product fantastic')) >= 0.5
	return $r.id
`

func TestProfileSimilaritySelect(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	sess := NewSession()
	loadReviews(t, c, sess)
	exec(t, c, sess, `create index kw on Reviews(summary) type keyword;`)
	exec(t, c, sess, `set profile 'on';`)

	res := exec(t, c, sess, profileQuery)
	if len(res.Rows) == 0 {
		t.Fatal("profile query returned no rows")
	}
	p := res.Profile
	if p == nil {
		t.Fatal("set profile 'on' did not attach a profile")
	}

	// Compile phase: cold run, so real compile work happened.
	if p.Compile.PlanCacheHit {
		t.Error("first execution reported a plan-cache hit")
	}
	if p.Compile.ParseNs <= 0 || p.Compile.TranslateNs <= 0 || p.Compile.OptimizeNs <= 0 {
		t.Errorf("compile timings not recorded: %+v", p.Compile)
	}
	if p.ExecNs <= 0 {
		t.Errorf("ExecNs = %d, want > 0", p.ExecNs)
	}
	if p.RowsOut != int64(len(res.Rows)) {
		t.Errorf("RowsOut = %d, want %d", p.RowsOut, len(res.Rows))
	}

	// Similarity stats: the index path ran, produced candidates, and
	// global verification kept no more than it probed.
	s := p.Similarity
	if s.IndexSearches == 0 {
		t.Fatalf("similarity query did not use the index: %+v", s)
	}
	if s.OccurrenceT <= 0 {
		t.Errorf("OccurrenceT = %d, want > 0", s.OccurrenceT)
	}
	if s.Candidates <= 0 {
		t.Errorf("Candidates = %d, want > 0", s.Candidates)
	}
	if s.Verified <= 0 {
		t.Errorf("Verified = %d, want > 0", s.Verified)
	}
	if s.Verified > s.Candidates {
		t.Errorf("Verified (%d) > Candidates (%d)", s.Verified, s.Candidates)
	}
	if s.Verified < int64(len(res.Rows)) {
		t.Errorf("Verified (%d) < rows returned (%d)", s.Verified, len(res.Rows))
	}

	// Operator tree: per-operator aggregates plus per-instance spans.
	if len(p.Operators) == 0 {
		t.Fatal("no operator profiles recorded")
	}
	var verify bool
	for _, op := range p.Operators {
		if op.Instances <= 0 {
			t.Errorf("operator %s has %d instances", op.Name, op.Instances)
		}
		if strings.Contains(op.Name, "Select(verify)") {
			verify = true
		}
	}
	if !verify {
		t.Errorf("no Select(verify) operator in profile: %+v", p.Operators)
	}
	if len(p.Spans) == 0 {
		t.Fatal("no per-instance spans recorded")
	}
	var tuplesOut int64
	for _, sp := range p.Spans {
		tuplesOut += sp.TuplesOut
	}
	if tuplesOut == 0 {
		t.Error("spans recorded zero tuples moved")
	}
	if tree := p.Tree(); !strings.Contains(tree, "operator") {
		t.Errorf("Tree() output malformed:\n%s", tree)
	}

	// Warm re-execution: same request text, same session state at entry,
	// so the plan cache serves it — compile phases vanish, the profile
	// says so, and the similarity stats still add up.
	res2 := exec(t, c, sess, profileQuery)
	p2 := res2.Profile
	if p2 == nil {
		t.Fatal("warm execution lost the profile")
	}
	if !p2.Compile.PlanCacheHit {
		t.Fatal("second execution missed the plan cache")
	}
	if p2.Compile.ParseNs != 0 || p2.Compile.TranslateNs != 0 || p2.Compile.OptimizeNs != 0 {
		t.Errorf("warm hit still reports compile work: %+v", p2.Compile)
	}
	if got, want := rowInts(t, res2.Rows), rowInts(t, res.Rows); len(got) != len(want) {
		t.Errorf("warm rows %v != cold rows %v", got, want)
	}
	if p2.Similarity.Verified > p2.Similarity.Candidates {
		t.Errorf("warm: Verified (%d) > Candidates (%d)",
			p2.Similarity.Verified, p2.Similarity.Candidates)
	}
}

func TestProfileOffByDefault(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	sess := NewSession()
	loadReviews(t, c, sess)
	res := exec(t, c, sess, `for $r in dataset Reviews return $r.id`)
	if res.Profile != nil {
		t.Error("profile attached without set profile 'on'")
	}
	exec(t, c, sess, `set profile 'on';`)
	if res := exec(t, c, sess, `for $r in dataset Reviews return $r.id`); res.Profile == nil {
		t.Error("profile missing after set profile 'on'")
	}
	exec(t, c, sess, `set profile 'off';`)
	if res := exec(t, c, sess, `for $r in dataset Reviews return $r.id`); res.Profile != nil {
		t.Error("profile still attached after set profile 'off'")
	}
}

func TestSetProfileRejectsJunk(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	sess := NewSession()
	mustErr(t, c, sess, `set profile 'maybe';`)
}

func TestAdmissionTypedErrors(t *testing.T) {
	m := newQueryManager(1, 0, 0, 0)
	_, rel, _, err := m.admit(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}

	// Second caller with a deadline: admission times out.
	shortCtx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, _, err = m.admit(shortCtx, 0)
	if !errors.Is(err, ErrAdmissionTimeout) {
		t.Fatalf("err = %v, want ErrAdmissionTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want to unwrap to DeadlineExceeded", err)
	}
	if errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("admission timeout misclassified as execution timeout: %v", err)
	}

	// Third caller abandons the wait: canceled, not timed out.
	canceledCtx, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	_, _, _, err = m.admit(canceledCtx, 0)
	if !errors.Is(err, ErrAdmissionCanceled) {
		t.Fatalf("err = %v, want ErrAdmissionCanceled", err)
	}
	if errors.Is(err, ErrAdmissionTimeout) {
		t.Fatalf("cancellation misclassified as timeout: %v", err)
	}

	if err := rel(nil); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Rejected != 2 || st.TimedOut != 0 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReleaseClassifiesExecutionTimeout(t *testing.T) {
	m := newQueryManager(1, time.Millisecond, 0, 0)
	qctx, rel, _, err := m.admit(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	<-qctx.Done() // per-query deadline fires
	got := rel(qctx.Err())
	if !errors.Is(got, ErrQueryTimeout) {
		t.Fatalf("err = %v, want ErrQueryTimeout", got)
	}
	st := m.Stats()
	if st.TimedOut != 1 || st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// An error with the caller's own context done is NOT an execution
	// timeout: the client went away.
	ctx, cancel := context.WithCancel(context.Background())
	qctx2, rel2, _, err := m.admit(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	<-qctx2.Done()
	got = rel2(qctx2.Err())
	if errors.Is(got, ErrQueryTimeout) {
		t.Fatalf("client cancellation misclassified as execution timeout: %v", got)
	}
}

// Quickstart: open a database, create a dataset and similarity
// indexes, insert a few records, and run the two similarity-query
// styles the paper's Figure 4 shows — the ~= operator with session
// settings and the explicit function call.
package main

import (
	"fmt"
	"log"
	"os"

	"simdb/internal/adm"
	"simdb/internal/core"
)

func main() {
	dir, err := os.MkdirTemp("", "simdb-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := core.Open(core.Config{DataDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// DDL: a dataset plus a keyword index (for Jaccard) and a 2-gram
	// index (for edit distance).
	db.MustExecute(`create dataset AmazonReview primary key review_id;`)

	reviews := []string{
		`{"review_id": 1, "username": "james", "summary": "This movie touched my heart!"}`,
		`{"review_id": 2, "username": "mary",  "summary": "The best car charger I ever bought"}`,
		`{"review_id": 3, "username": "mario", "summary": "Different than my usual but good"}`,
		`{"review_id": 4, "username": "jamie", "summary": "Great Product - Fantastic Gift"}`,
		`{"review_id": 5, "username": "maria", "summary": "Better ever than I expected"}`,
		`{"review_id": 6, "username": "marla", "summary": "Great product fantastic quality"}`,
	}
	for _, r := range reviews {
		if err := db.InsertJSON("AmazonReview", r); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	db.MustExecute(`create index smix on AmazonReview(summary) type keyword;`)
	db.MustExecute(`create index nix on AmazonReview(username) type ngram(2);`)

	// Style 1 (Figure 4a): the ~= operator with session settings.
	fmt.Println("Jaccard-similar summary pairs (~= operator):")
	res := db.MustExecute(`
		set simfunction 'jaccard';
		set simthreshold '0.5';
		for $t1 in dataset AmazonReview
		for $t2 in dataset AmazonReview
		where word-tokens($t1.summary) ~= word-tokens($t2.summary)
		  and $t1.review_id < $t2.review_id
		return { 'left': $t1.summary, 'right': $t2.summary }
	`)
	printRows(res.Rows)

	// Style 2 (Figure 4b): the explicit similarity function, served by
	// the n-gram index (check the plan to see the index operators).
	fmt.Println("\nUsernames within edit distance 1 of \"marla\" (function call):")
	res = db.MustExecute(`
		for $r in dataset AmazonReview
		where edit-distance($r.username, 'marla') <= 1
		return $r.username
	`)
	printRows(res.Rows)
	fmt.Printf("\n(executed in %.2f ms over %d plan operators; %d index candidates verified)\n",
		float64(res.Stats.ExecNs)/1e6, res.Stats.PlanOps, res.Stats.CandidatesTotal)
}

func printRows(rows []adm.Value) {
	for _, r := range rows {
		fmt.Println(" ", r)
	}
}

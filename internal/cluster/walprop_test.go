package cluster

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"simdb/internal/adm"
	"simdb/internal/optimizer"
	"simdb/internal/storage/errfs"
)

// TestWALCrashRecoveryProperty is the randomized counterpart of the
// storage-level crash matrix: random batch sizes, a random kill point,
// a full cluster restart, then the durability contract of the active
// sync mode is checked for every submitted record. SIMDB_WAL_MODE
// narrows the run to one mode (the CI matrix sets it); by default all
// three modes run, each with several seeds.
func TestWALCrashRecoveryProperty(t *testing.T) {
	modes := []string{"commit", "interval", "off"}
	if m := os.Getenv("SIMDB_WAL_MODE"); m != "" {
		modes = []string{m}
	}
	for _, mode := range modes {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", mode, seed), func(t *testing.T) {
				runWALCrashProperty(t, mode, seed)
			})
		}
	}
}

// walWorkload is one pass of the randomized ingest workload: a cluster
// on an injected filesystem plus the acknowledgement ledger the
// durability contract is checked against.
type walWorkload struct {
	fs        *errfs.FS
	cfg       Config
	submitted int
	acked     []bool
}

// runWALWorkload drives random-size batches against a fresh cluster
// until the crash plan fires or the workload ends. crashAt < 0 runs
// fault-free (the probe pass). Each record carries a unique keyword
// token, so row i acknowledged means both the primary row and the
// posting for tok_i were committed atomically.
func runWALWorkload(t *testing.T, mode string, seed int64, crashAt int) *walWorkload {
	t.Helper()
	fs := errfs.New()
	w := &walWorkload{
		fs: fs,
		cfg: Config{
			NumNodes:          2,
			PartitionsPerNode: 2,
			DataDir:           t.TempDir(),
			FS:                fs,
			WALSyncMode:       mode,
		},
	}
	fs.SetPlan(errfs.Plan{CrashAtOp: crashAt, Variant: errfs.Kill})
	c, err := New(w.cfg)
	if err != nil {
		// Crashed during startup: nothing was acknowledged.
		return w
	}
	sess := NewSession()
	exec(t, c, sess, `create dataset D primary key id;`)
	if err := c.Catalog.AddIndex("Default", "D", optimizer.IndexMeta{Name: "kix", Field: "summary", Type: "keyword"}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	const maxRecords = 600
	for w.submitted < maxRecords && !fs.Crashed() {
		n := 1 + rng.Intn(40)
		if w.submitted+n > maxRecords {
			n = maxRecords - w.submitted
		}
		recs := make([]adm.Value, 0, n)
		for i := 0; i < n; i++ {
			recs = append(recs, mkRec(int64(w.submitted+i), fmt.Sprintf("tok%04d", w.submitted+i)))
		}
		err := c.InsertBatch("Default", "D", recs)
		for i := 0; i < n; i++ {
			w.acked = append(w.acked, err == nil)
		}
		w.submitted += n
		if err != nil {
			break
		}
	}
	c.Close() // best-effort: the filesystem may already be "dead"
	return w
}

func runWALCrashProperty(t *testing.T, mode string, seed int64) {
	// Probe pass: run the workload fault-free to learn how many
	// filesystem operations it produces end to end, then aim the kill
	// uniformly inside that window. Group commit coalesces many records
	// into few writes (and mode "off" barely touches the filesystem
	// before close-time flushes), so a fixed op range would routinely
	// miss the interesting region entirely.
	probe := runWALWorkload(t, mode, seed, -1)
	if probe.fs.Crashed() {
		t.Fatal("probe pass crashed without a crash plan")
	}
	nops := len(probe.fs.Ops())
	rng := rand.New(rand.NewSource(seed * 7919))
	crashAt := 1 + rng.Intn(nops)

	w := runWALWorkload(t, mode, seed, crashAt)
	fs, cfg, submitted, acked := w.fs, w.cfg, w.submitted, w.acked
	crashed := fs.Crashed()

	// Process restart.
	fs.SetPlan(errfs.Plan{CrashAtOp: -1})
	fs.Reopen()
	c2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart after crash: %v", err)
	}
	defer c2.Close()
	sess2 := NewSession()
	exec(t, c2, sess2, `create dataset D primary key id;`)
	if err := c2.Catalog.AddIndex("Default", "D", optimizer.IndexMeta{Name: "kix", Field: "summary", Type: "keyword"}); err != nil {
		t.Fatal(err)
	}

	recovered := 0
	for i := 0; i < submitted; i++ {
		pk := adm.NewInt(int64(i))
		part := c2.partitionOfPK(pk)
		node := c2.nodeOfPartition(part)
		tree, err := node.primary("Default", "D", part)
		if err != nil {
			t.Fatalf("open primary partition %d: %v", part, err)
		}
		_, ok, err := tree.Get(adm.OrderedKey(pk))
		if err != nil {
			t.Fatalf("get record %d: %v", i, err)
		}
		ix, err := node.invIndex("Default", "D", "kix", part)
		if err != nil {
			t.Fatalf("open index partition %d: %v", part, err)
		}
		// Ingestion stores counted tokens ("tok#occurrences").
		pks, err := ix.Postings(fmt.Sprintf("tok%04d#1", i))
		if err != nil {
			t.Fatalf("postings for record %d: %v", i, err)
		}
		pok := len(pks) > 0
		if ok {
			recovered++
		}
		switch mode {
		case "commit":
			// Every acknowledged record must survive, and the atomic
			// row+posting group must never be torn apart.
			if acked[i] && !ok {
				t.Fatalf("record %d was acknowledged but is gone after recovery", i)
			}
			if pok != ok {
				t.Fatalf("record %d: row present=%v, posting present=%v (atomic group torn)", i, ok, pok)
			}
		case "interval":
			// Bounded loss is allowed, atomicity is not negotiable.
			if pok != ok {
				t.Fatalf("record %d: row present=%v, posting present=%v (atomic group torn)", i, ok, pok)
			}
		default:
			// off: unflushed data is legitimately gone, and a crash
			// between a primary flush and an index flush may tear a
			// group. Recovery just has to come back serving queries.
		}
	}

	// Queries must work on the recovered state.
	res := exec(t, c2, sess2, `count(for $r in dataset D return $r)`)
	if got := res.Rows[0].Int(); got != int64(recovered) {
		t.Errorf("count after recovery = %d, direct reads saw %d rows", got, recovered)
	}
	t.Logf("mode=%s seed=%d: ops=%d crashAt=%d crashed=%v submitted=%d recovered=%d",
		mode, seed, nops, crashAt, crashed, submitted, recovered)
}

// TestInsertAtomicOnIndexFailureNoWAL pins the legacy rollback path:
// with the WAL off, a failed secondary-index insert must undo the
// already-applied primary entry and postings in other indexes (the WAL
// path never needs the rollback — it validates before committing).
func TestInsertAtomicOnIndexFailureNoWAL(t *testing.T) {
	c, err := New(Config{NumNodes: 1, PartitionsPerNode: 2, DataDir: t.TempDir(), WALSyncMode: "off"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	sess := NewSession()
	exec(t, c, sess, `create dataset D primary key id;`)
	if err := c.Catalog.AddIndex("Default", "D", optimizer.IndexMeta{Name: "kix", Field: "summary", Type: "keyword"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Catalog.AddIndex("Default", "D", optimizer.IndexMeta{Name: "nix", Field: "summary", Type: "ngram", GramLen: 2}); err != nil {
		t.Fatal(err)
	}

	hook := func(dv, ds, ix string) error {
		if ix == "nix" {
			return fmt.Errorf("injected index failure")
		}
		return nil
	}
	c.testIndexFail.Store(&hook)
	if err := c.InsertBatch("Default", "D", []adm.Value{mkRec(1, "hello")}); err == nil {
		t.Fatal("insert with failing index should error")
	}
	if got := countDataset(t, c, sess, "D"); got != 0 {
		t.Errorf("count after rolled-back insert = %d, want 0", got)
	}
	pk := adm.NewInt(1)
	part := c.partitionOfPK(pk)
	ix, err := c.nodeOfPartition(part).invIndex("Default", "D", "kix", part)
	if err != nil {
		t.Fatal(err)
	}
	if pks, err := ix.Postings("hello#1"); err != nil || len(pks) != 0 {
		t.Errorf("orphaned kix postings after rollback: %v (err %v)", pks, err)
	}

	c.testIndexFail.Store(nil)
	if err := c.InsertBatch("Default", "D", []adm.Value{mkRec(1, "hello")}); err != nil {
		t.Fatal(err)
	}
	if got := countDataset(t, c, sess, "D"); got != 1 {
		t.Errorf("count after retry = %d, want 1", got)
	}
}

// TestCornerCaseQuerySurvivesCrash exercises the compile-time corner
// case end to end across a crash: an edit-distance predicate whose
// T-occurrence bound is <= 0 must fall back to a scan (and say so in
// the query stats) both before the crash and on the recovered store.
func TestCornerCaseQuerySurvivesCrash(t *testing.T) {
	fs := errfs.New()
	cfg := Config{NumNodes: 1, PartitionsPerNode: 2, DataDir: t.TempDir(), FS: fs, WALSyncMode: "commit"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession()
	exec(t, c, sess, `create dataset Users primary key id;`)
	if err := c.Catalog.AddIndex("Default", "Users", optimizer.IndexMeta{Name: "nix", Field: "name", Type: "ngram", GramLen: 2}); err != nil {
		t.Fatal(err)
	}
	user := func(id int64, name string) adm.Value {
		rec := adm.EmptyRecord(2)
		rec.Set("id", adm.NewInt(id))
		rec.Set("name", adm.NewString(name))
		return adm.NewRecord(rec)
	}
	names := []string{"mary", "maria", "mario", "henrietta"}
	for i, n := range names {
		if err := c.InsertBatch("Default", "Users", []adm.Value{user(int64(i), n)}); err != nil {
			t.Fatal(err)
		}
	}

	// 'ma' with k=3 and 2-grams: T <= 0, the optimizer must keep the
	// scan even though an applicable ngram index exists.
	query := `
		for $r in dataset Users
		where edit-distance($r.name, 'ma') <= 3
		return $r.id
	`
	res := exec(t, c, sess, query)
	if res.Stats.CornerCaseFallbacks == 0 {
		t.Fatal("corner-case fallback not counted in query stats")
	}
	if res.Stats.IndexSearches != 0 {
		t.Fatal("corner-case query must not search the index")
	}
	before := fmt.Sprint(rowInts(t, res.Rows))
	if len(res.Rows) < 3 {
		t.Fatalf("expected mary/maria/mario to match, got %s", before)
	}

	// Crash the next storage mutation: an insert that would not match
	// the query dies mid-commit, the "process" is gone.
	fs.SetPlan(errfs.Plan{CrashAtOp: len(fs.Ops()), Variant: errfs.Kill})
	if err := c.InsertBatch("Default", "Users", []adm.Value{user(99, "zzzz")}); err == nil {
		t.Fatal("insert during planned crash should fail")
	}
	c.Close()

	fs.SetPlan(errfs.Plan{CrashAtOp: -1})
	fs.Reopen()
	c2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer c2.Close()
	sess2 := NewSession()
	exec(t, c2, sess2, `create dataset Users primary key id;`)
	if err := c2.Catalog.AddIndex("Default", "Users", optimizer.IndexMeta{Name: "nix", Field: "name", Type: "ngram", GramLen: 2}); err != nil {
		t.Fatal(err)
	}
	res2 := exec(t, c2, sess2, query)
	if res2.Stats.CornerCaseFallbacks == 0 {
		t.Error("corner-case fallback not counted after recovery")
	}
	if res2.Stats.IndexSearches != 0 {
		t.Error("corner-case query used the index after recovery")
	}
	if after := fmt.Sprint(rowInts(t, res2.Rows)); after != before {
		t.Errorf("corner-case query changed across crash: %s then %s", before, after)
	}
}

// TestWALMetricsInClusterSnapshot pins the observability half of the
// durability contract: after a commit-mode ingest, the cluster metric
// snapshot must carry the storage.wal.* series (appends/fsyncs plus
// the group-size histogram from the syncer, and the refreshed segment
// gauge) so operators can watch the group-commit ratio live.
func TestWALMetricsInClusterSnapshot(t *testing.T) {
	c, err := New(Config{NumNodes: 1, PartitionsPerNode: 2, DataDir: t.TempDir(), WALSyncMode: "commit"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	sess := NewSession()
	exec(t, c, sess, `create dataset D primary key id;`)
	recs := make([]adm.Value, 0, 64)
	for i := 0; i < 64; i++ {
		recs = append(recs, mkRec(int64(i), fmt.Sprintf("tok%04d", i)))
	}
	if err := c.InsertBatch("Default", "D", recs); err != nil {
		t.Fatal(err)
	}

	snap := c.Metrics()
	if snap.Counters["storage.wal.appends"] == 0 {
		t.Error("storage.wal.appends missing or zero in cluster snapshot")
	}
	if snap.Counters["storage.wal.fsyncs"] == 0 {
		t.Error("storage.wal.fsyncs missing or zero in cluster snapshot")
	}
	if _, ok := snap.Histograms["storage.wal.group_size"]; !ok {
		t.Error("storage.wal.group_size histogram missing from cluster snapshot")
	}
	if snap.Gauges["storage.wal.segments"] < 1 {
		t.Errorf("storage.wal.segments = %d, want >= 1", snap.Gauges["storage.wal.segments"])
	}
}

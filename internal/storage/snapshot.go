package storage

import (
	"bytes"
	"context"
	"sync"
)

// TreeSnapshot is a refcounted read view of an LSM tree: a reference to
// the tree's current memtable plus its immutable disk-component list,
// acquired under a brief lock. Reads against the snapshot then proceed
// without holding any tree lock, so arbitrarily slow scans (operator
// pipelines running user code per tuple) never block writers, flushes,
// or merges — the component-lifecycle discipline of LSM storage
// managers, where immutable disk components exist precisely so readers
// never block writers.
//
// Semantics: the disk-component list is a true point-in-time view
// (merges retire components only after every snapshot referencing them
// is closed). The memtable reference is read-committed — a Get or the
// start of a Scan observes writes applied to the still-live memtable
// after the snapshot was taken; once a flush rotates the memtable out,
// the snapshot keeps reading the frozen, no-longer-mutated instance.
//
// Close must be called exactly once when done; it is what lets retired
// components drain and delete their files.
type TreeSnapshot struct {
	mem        *memtable
	components []*Component // newest first
	once       sync.Once
}

// Snapshot acquires a read view of the tree. The caller must Close it.
func (t *LSMTree) Snapshot() *TreeSnapshot {
	t.mu.RLock()
	s := &TreeSnapshot{
		mem:        t.mem,
		components: make([]*Component, len(t.components)),
	}
	copy(s.components, t.components)
	for _, c := range s.components {
		c.acquire()
	}
	t.mu.RUnlock()
	return s
}

// Close releases the snapshot's component references. Idempotent.
func (s *TreeSnapshot) Close() {
	s.once.Do(func() {
		for _, c := range s.components {
			c.release()
		}
	})
}

// Components returns the number of disk components in the view.
func (s *TreeSnapshot) Components() int { return len(s.components) }

// Get returns the newest value for key in the snapshot, consulting the
// memtable first and then disk components newest-first through their
// bloom filters. No tree lock is held.
func (s *TreeSnapshot) Get(key []byte) ([]byte, bool, error) {
	if v, dead, ok := s.mem.get(key); ok {
		if dead {
			return nil, false, nil
		}
		return v, true, nil
	}
	for _, c := range s.components {
		v, ok, err := c.Get(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			val, dead := decodeEntry(v)
			if dead {
				return nil, false, nil
			}
			return val, true, nil
		}
	}
	return nil, false, nil
}

// Scan calls fn for each live (key, value) with key in [start, end) in
// key order, merging the memtable view and all snapshot components. fn
// must not retain its arguments. Iteration stops early if fn returns
// false, or with ctx.Err() once ctx is cancelled (checked every few
// hundred entries). fn runs with no lock held, so a slow consumer never
// starves writers. A nil ctx disables cancellation checks.
func (s *TreeSnapshot) Scan(ctx context.Context, start, end []byte, fn func(key, value []byte) bool) error {
	iters := make([]*Iterator, len(s.components))
	for i, c := range s.components {
		iters[i] = c.NewIterator(start, end)
	}
	merge := newMergeIter(iters)
	diskValid := merge.next()

	memEntries := s.mem.snapshotRange(start, end)
	mi := 0

	const cancelCheckEvery = 512
	steps := 0
	for {
		if ctx != nil {
			if steps++; steps%cancelCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
		var useMem bool
		switch {
		case mi < len(memEntries) && diskValid:
			c := bytes.Compare([]byte(memEntries[mi].key), merge.key)
			useMem = c <= 0
			if c == 0 {
				// Memtable shadows disk: skip the disk version.
				diskValid = merge.next()
			}
		case mi < len(memEntries):
			useMem = true
		case diskValid:
			useMem = false
		default:
			return merge.err
		}
		if useMem {
			kv := memEntries[mi]
			mi++
			if kv.e.tombstone {
				continue
			}
			if !fn([]byte(kv.key), kv.e.value) {
				return nil
			}
		} else {
			val, dead := decodeEntry(merge.val)
			k := merge.key
			if !dead {
				if !fn(k, val) {
					return nil
				}
			}
			diskValid = merge.next()
		}
	}
}

package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// that about:tracing and Perfetto load). Complete events use ph "X"
// with microsecond ts/dur; metadata events ("M") name processes and
// threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome pid/tid layout: the query's phases and operators live in pid
// 1; overlapping background storage work in pid 2, one lane per
// category.
const (
	chromePidQuery   = 1
	chromePidStorage = 2

	chromeTidPhases = 0
	// Operator lanes: tid = operatorLaneBase + node*operatorLaneStride + part.
	operatorLaneBase   = 10
	operatorLaneStride = 64

	chromeTidFlushMerge = 1
	chromeTidWAL        = 2
)

func argsMap(args []Arg) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		if a.Str != "" {
			m[a.Key] = a.Str
		} else {
			m[a.Key] = a.Val
		}
	}
	return m
}

func metaName(pid, tid int, kind, name string) chromeEvent {
	return chromeEvent{
		Name: kind, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	}
}

// ChromeJSON renders the trace — plus any background storage/WAL
// events overlapping its time window, when a tracer is supplied — as
// Chrome trace-event JSON. The output loads in about:tracing and
// Perfetto: query phases on one lane, operator instances on one lane
// per (node, partition), background work in a second process.
func (t *Trace) ChromeJSON(tc *Tracer) ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("trace: no trace")
	}
	spans := t.Spans()
	out := chromeTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents,
		metaName(chromePidQuery, 0, "process_name", fmt.Sprintf("query %d", t.ID)),
		metaName(chromePidQuery, chromeTidPhases, "thread_name", "phases"),
	)

	// The whole query as the root event so empty traces still render.
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "query", Cat: CatPhase, Ph: "X",
		Ts: 0, Dur: float64(t.DurNs()) / 1e3,
		Pid: chromePidQuery, Tid: chromeTidPhases,
		Args: map[string]any{"query": t.Query, "query_id": t.ID, "error": t.Err()},
	})

	seenLanes := map[int]string{}
	for _, s := range spans {
		tid := chromeTidPhases
		if s.Cat == CatOperator {
			tid = operatorLaneBase + s.Node*operatorLaneStride + s.Part
			if _, ok := seenLanes[tid]; !ok {
				seenLanes[tid] = fmt.Sprintf("node %d / part %d", s.Node, s.Part)
			}
		}
		dur := float64(s.DurNs) / 1e3
		if dur <= 0 {
			dur = 0.001 // keep zero-length spans visible
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts: float64(s.StartNs) / 1e3, Dur: dur,
			Pid: chromePidQuery, Tid: tid,
			Args: argsMap(s.Args),
		})
	}
	lanes := make([]int, 0, len(seenLanes))
	for tid := range seenLanes {
		lanes = append(lanes, tid)
	}
	sort.Ints(lanes)
	for _, tid := range lanes {
		out.TraceEvents = append(out.TraceEvents,
			metaName(chromePidQuery, tid, "thread_name", seenLanes[tid]))
	}

	if tc != nil {
		// The overlay window covers the trace's wall duration and every
		// recorded span (spans injected with SpanAt may extend past the
		// measured end).
		endNs := t.DurNs()
		for _, s := range spans {
			if e := s.StartNs + s.DurNs; e > endNs {
				endNs = e
			}
		}
		end := t.Start.Add(time.Duration(endNs))
		events := tc.EventsBetween(t.Start, end)
		if len(events) > 0 {
			out.TraceEvents = append(out.TraceEvents,
				metaName(chromePidStorage, 0, "process_name", "storage maintenance"),
				metaName(chromePidStorage, chromeTidFlushMerge, "thread_name", "flush/merge"),
				metaName(chromePidStorage, chromeTidWAL, "thread_name", "wal"),
			)
			for _, e := range events {
				tid := chromeTidFlushMerge
				if e.Cat == CatWAL {
					tid = chromeTidWAL
				}
				args := argsMap(e.Args)
				if args == nil {
					args = map[string]any{}
				}
				args["key"] = e.Key
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: e.Name, Cat: e.Cat, Ph: "X",
					Ts:  float64(e.Start.Sub(t.Start).Nanoseconds()) / 1e3,
					Dur: float64(e.DurNs) / 1e3,
					Pid: chromePidStorage, Tid: tid,
					Args: args,
				})
			}
		}
	}
	return json.Marshal(out)
}

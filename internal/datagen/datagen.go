// Package datagen synthesizes the three evaluation datasets of the
// paper's Table 3 — Amazon reviews, Reddit submissions, and tweets —
// at configurable scale. The paper's raw data is not redistributable,
// so these generators are calibrated to Table 4's field statistics
// instead: a Zipf-distributed vocabulary drives token frequencies (the
// skew prefix filtering exploits), name pools with typo injection give
// edit-distance workloads realistic near-duplicates, and field lengths
// match the reported averages (scaled maxima are documented in
// DESIGN.md §3).
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"simdb/internal/adm"
)

// Kind names a dataset generator.
type Kind string

// The three datasets of the paper's evaluation.
const (
	Amazon  Kind = "amazon"
	Reddit  Kind = "reddit"
	Twitter Kind = "twitter"
)

// Fields returns the dataset's similarity fields as used in the paper
// (Table 3 "Fields used"): the set-similarity (Jaccard) field and the
// string-similarity (edit distance) field.
func Fields(kind Kind) (jaccardField, edField string, err error) {
	switch kind {
	case Amazon:
		return "summary", "reviewerName", nil
	case Reddit:
		return "title", "author", nil
	case Twitter:
		return "text", "user.name", nil
	}
	return "", "", fmt.Errorf("datagen: unknown dataset kind %q", kind)
}

// PKField returns the primary-key field each generator emits.
func PKField(kind Kind) string { return "id" }

// vocabulary is a deterministic pronounceable word list; index order is
// frequency rank (rank 0 = most frequent).
type vocabulary struct {
	words []string
	zipf  *rand.Zipf
}

var syllables = []string{
	"ba", "be", "bi", "bo", "bu", "ca", "ce", "co", "cu", "da", "de", "di",
	"do", "du", "fa", "fe", "fi", "fo", "ga", "ge", "go", "ha", "he", "hi",
	"ho", "ja", "jo", "ka", "ke", "ki", "ko", "la", "le", "li", "lo", "lu",
	"ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu", "pa", "pe",
	"pi", "po", "ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
	"ta", "te", "ti", "to", "tu", "va", "ve", "vi", "vo", "wa", "we", "wi",
	"za", "zo",
}

// commonWords seed the top of the frequency distribution so generated
// text looks plausible and token-frequency ordering is stable.
var commonWords = []string{
	"the", "a", "and", "of", "to", "is", "it", "for", "great", "good",
	"product", "best", "ever", "love", "nice", "works", "quality", "fast",
	"buy", "price", "than", "this", "that", "not", "very", "with", "was",
	"my", "but", "you", "like", "really", "time", "would", "recommend",
}

func newVocabulary(r *rand.Rand, size int, zipfS float64) *vocabulary {
	words := make([]string, 0, size)
	seen := map[string]bool{}
	add := func(w string) {
		if !seen[w] {
			seen[w] = true
			words = append(words, w)
		}
	}
	for _, w := range commonWords {
		add(w)
	}
	for len(words) < size {
		n := 2 + r.Intn(3)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(syllables[r.Intn(len(syllables))])
		}
		add(sb.String())
	}
	return &vocabulary{
		words: words,
		zipf:  rand.NewZipf(r, zipfS, 1, uint64(size-1)),
	}
}

// word draws a Zipf-distributed word.
func (v *vocabulary) word() string { return v.words[v.zipf.Uint64()] }

// sentence draws n words.
func (v *vocabulary) sentence(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = v.word()
	}
	return strings.Join(parts, " ")
}

// namePool builds person-like names and serves draws with controlled
// near-duplication: most draws reuse a base name, and a fraction get
// 1-2 random character edits (typos), so edit-distance selections at
// k ∈ {1,2,3} have non-trivial, threshold-sensitive selectivity.
type namePool struct {
	r     *rand.Rand
	base  []string
	typoP float64
}

func newNamePool(r *rand.Rand, size int, typoP float64) *namePool {
	base := make([]string, size)
	for i := range base {
		base[i] = genName(r)
	}
	return &namePool{r: r, base: base, typoP: typoP}
}

func genName(r *rand.Rand) string {
	first := cap1(randWord(r, 2+r.Intn(2)))
	last := cap1(randWord(r, 2+r.Intn(2)))
	switch r.Intn(4) {
	case 0:
		return first // mononym
	default:
		return first + " " + last
	}
}

func randWord(r *rand.Rand, nSyll int) string {
	var sb strings.Builder
	for i := 0; i < nSyll; i++ {
		sb.WriteString(syllables[r.Intn(len(syllables))])
	}
	return sb.String()
}

func cap1(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// draw returns a name, possibly a typo'd variant of a base name.
func (p *namePool) draw() string {
	name := p.base[p.r.Intn(len(p.base))]
	if p.r.Float64() < p.typoP {
		name = injectTypos(p.r, name, 1+p.r.Intn(2))
	}
	return name
}

// injectTypos applies k random single-character edits.
func injectTypos(r *rand.Rand, s string, k int) string {
	runes := []rune(s)
	for i := 0; i < k && len(runes) > 1; i++ {
		pos := r.Intn(len(runes))
		switch r.Intn(3) {
		case 0: // substitute
			runes[pos] = rune('a' + r.Intn(26))
		case 1: // delete
			runes = append(runes[:pos], runes[pos+1:]...)
		case 2: // insert
			runes = append(runes[:pos], append([]rune{rune('a' + r.Intn(26))}, runes[pos:]...)...)
		}
	}
	return string(runes)
}

// Options tunes a generator.
type Options struct {
	Seed int64
	// TitleWords scales Reddit's long-text field (the paper's average
	// is 1173 words; the default here is 40 to bound runtime — see
	// DESIGN.md §3).
	TitleWords int
	// VocabSize is the token vocabulary size.
	VocabSize int
	// ZipfS is the Zipf skew parameter (>1).
	ZipfS float64
	// TypoRate is the fraction of names with injected typos.
	TypoRate float64
}

func (o Options) withDefaults() Options {
	if o.TitleWords <= 0 {
		o.TitleWords = 40
	}
	if o.VocabSize <= 0 {
		o.VocabSize = 4000
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.15
	}
	if o.TypoRate <= 0 {
		o.TypoRate = 0.3
	}
	return o
}

// Generate produces n records of the given kind and passes each to
// emit. Generation is deterministic for a (kind, n, Options.Seed)
// triple; ids run 1..n.
func Generate(kind Kind, n int, opts Options, emit func(adm.Value) error) error {
	o := opts.withDefaults()
	r := rand.New(rand.NewSource(o.Seed + int64(len(kind))*7919))
	vocab := newVocabulary(r, o.VocabSize, o.ZipfS)
	names := newNamePool(r, 1+n/8, o.TypoRate)
	for i := 1; i <= n; i++ {
		var rec *adm.Record
		switch kind {
		case Amazon:
			rec = amazonRecord(r, vocab, names, i, n)
		case Reddit:
			rec = redditRecord(r, vocab, names, i, n, o.TitleWords)
		case Twitter:
			rec = twitterRecord(r, vocab, names, i, n)
		default:
			return fmt.Errorf("datagen: unknown dataset kind %q", kind)
		}
		if err := emit(adm.NewRecord(rec)); err != nil {
			return err
		}
	}
	return nil
}

// amazonRecord: reviewerName ~10 chars, summary ~4 words (Table 4).
func amazonRecord(r *rand.Rand, vocab *vocabulary, names *namePool, id, n int) *adm.Record {
	rec := adm.EmptyRecord(7)
	rec.Set("id", adm.NewInt(int64(id)))
	rec.Set("gid", adm.NewInt(int64(r.Intn(groupKeyCardinality(n)))))
	rec.Set("reviewerName", adm.NewString(names.draw()))
	rec.Set("summary", adm.NewString(vocab.sentence(1+poissonish(r, 3))))
	rec.Set("overall", adm.NewInt(int64(1+r.Intn(5))))
	rec.Set("asin", adm.NewString(fmt.Sprintf("B%09d", r.Intn(1_000_000))))
	rec.Set("helpful", adm.NewInt(int64(r.Intn(50))))
	return rec
}

// redditRecord: author ~24 chars (handle-style), long title.
func redditRecord(r *rand.Rand, vocab *vocabulary, names *namePool, id, n, titleWords int) *adm.Record {
	rec := adm.EmptyRecord(6)
	rec.Set("id", adm.NewInt(int64(id)))
	rec.Set("gid", adm.NewInt(int64(r.Intn(groupKeyCardinality(n)))))
	author := strings.ReplaceAll(strings.ToLower(names.draw()), " ", "_")
	author += fmt.Sprintf("_%s%d", randWord(r, 1+r.Intn(2)), r.Intn(1000))
	rec.Set("author", adm.NewString(author))
	rec.Set("title", adm.NewString(vocab.sentence(1+poissonish(r, titleWords-1))))
	rec.Set("subreddit", adm.NewString(vocab.word()))
	rec.Set("score", adm.NewInt(int64(r.Intn(10000))))
	return rec
}

// twitterRecord: text ~10 words (max 70), nested user.name ~10 chars.
func twitterRecord(r *rand.Rand, vocab *vocabulary, names *namePool, id, n int) *adm.Record {
	user := adm.EmptyRecord(2)
	user.Set("name", adm.NewString(names.draw()))
	user.Set("followers", adm.NewInt(int64(r.Intn(100000))))
	rec := adm.EmptyRecord(5)
	rec.Set("id", adm.NewInt(int64(id)))
	rec.Set("gid", adm.NewInt(int64(r.Intn(groupKeyCardinality(n)))))
	nWords := 1 + poissonish(r, 9)
	if nWords > 70 {
		nWords = 70
	}
	rec.Set("text", adm.NewString(vocab.sentence(nWords)))
	rec.Set("user", adm.NewRecord(user))
	rec.Set("lang", adm.NewString("en"))
	return rec
}

// groupKeyCardinality sizes the "gid" equi-join key domain so that a
// random gid matches roughly 20 records regardless of dataset size
// (the multi-way experiment's outer-limiting equi-join, paper §6.4.3).
func groupKeyCardinality(n int) int {
	c := n / 20
	if c < 1 {
		c = 1
	}
	return c
}

// poissonish draws a cheap Poisson-like count with the given mean.
func poissonish(r *rand.Rand, mean int) int {
	if mean <= 0 {
		return 0
	}
	// Sum of two uniforms approximates the Poisson's concentration well
	// enough for field-length distributions.
	return r.Intn(mean+1) + r.Intn(mean+1)
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Typed serving errors. Callers distinguish the three failure modes
// with errors.Is: a query that never got a slot before its context
// expired (ErrAdmissionTimeout), an admission wait abandoned by the
// client (ErrAdmissionCanceled), and an admitted query killed by the
// per-query execution deadline (ErrQueryTimeout).
var (
	ErrAdmissionTimeout  = errors.New("cluster: timed out waiting for query admission")
	ErrAdmissionCanceled = errors.New("cluster: admission wait canceled")
	ErrQueryTimeout      = errors.New("cluster: query exceeded execution timeout")
)

// QueryManager gates concurrent query execution: a bounded admission
// semaphore keeps the cluster from oversubscribing itself under heavy
// traffic, a per-query deadline bounds runaway queries, and per-query
// stats are collected without racing (each query gets its own
// QueryStats; shared counters are atomic). Admission waits respect the
// caller's context, so a cancelled client stops waiting immediately.
type QueryManager struct {
	sem     chan struct{}
	timeout time.Duration

	admitted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64
	timedOut  atomic.Int64
	active    atomic.Int64
	peak      atomic.Int64
}

// newQueryManager builds a manager admitting at most maxConcurrent
// queries at a time (<= 0 means the default of 64) with an optional
// per-query timeout (0 means none).
func newQueryManager(maxConcurrent int, timeout time.Duration) *QueryManager {
	if maxConcurrent <= 0 {
		maxConcurrent = 64
	}
	return &QueryManager{
		sem:     make(chan struct{}, maxConcurrent),
		timeout: timeout,
	}
}

// admit blocks until a slot frees up or ctx is done. On success it
// returns the (possibly deadline-wrapped) query context, a release
// function, and the time spent waiting for admission. release
// classifies the query's outcome: it returns the error as-is, or
// wrapped in ErrQueryTimeout when the per-query deadline (not the
// caller's context) killed the execution.
func (m *QueryManager) admit(ctx context.Context) (context.Context, func(err error) error, int64, error) {
	t0 := time.Now()
	select {
	case m.sem <- struct{}{}:
	case <-ctx.Done():
		m.rejected.Add(1)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, nil, 0, fmt.Errorf("%w: %w", ErrAdmissionTimeout, ctx.Err())
		}
		return nil, nil, 0, fmt.Errorf("%w: %w", ErrAdmissionCanceled, ctx.Err())
	}
	waitNs := time.Since(t0).Nanoseconds()
	m.admitted.Add(1)
	a := m.active.Add(1)
	for {
		p := m.peak.Load()
		if a <= p || m.peak.CompareAndSwap(p, a) {
			break
		}
	}
	qctx := ctx
	cancel := func() {}
	if m.timeout > 0 {
		qctx, cancel = context.WithTimeout(ctx, m.timeout)
	}
	release := func(err error) error {
		// Classify before cancel(): cancelling would overwrite the
		// deadline state of qctx.
		if err != nil && m.timeout > 0 &&
			errors.Is(qctx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
			err = fmt.Errorf("%w: %w", ErrQueryTimeout, err)
			m.timedOut.Add(1)
		}
		cancel()
		m.active.Add(-1)
		if err != nil {
			m.failed.Add(1)
		} else {
			m.completed.Add(1)
		}
		<-m.sem
		return err
	}
	return qctx, release, waitNs, nil
}

// QueryManagerStats is a point-in-time snapshot of serving counters.
type QueryManagerStats struct {
	Admitted   int64 // queries that obtained a slot
	Completed  int64 // finished without error
	Failed     int64 // finished with an error (including timeouts)
	Rejected   int64 // gave up waiting for admission (context done)
	TimedOut   int64 // admitted but killed by the per-query deadline
	Active     int64 // currently executing
	PeakActive int64 // high-water mark of concurrent execution
	MaxActive  int   // the admission bound
}

// Stats returns the current counters.
func (m *QueryManager) Stats() QueryManagerStats {
	return QueryManagerStats{
		Admitted:   m.admitted.Load(),
		Completed:  m.completed.Load(),
		Failed:     m.failed.Load(),
		Rejected:   m.rejected.Load(),
		TimedOut:   m.timedOut.Load(),
		Active:     m.active.Load(),
		PeakActive: m.peak.Load(),
		MaxActive:  cap(m.sem),
	}
}

package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTestDB(t *testing.T) *Database {
	t.Helper()
	db, err := Open(Config{DataDir: t.TempDir(), NumNodes: 2, PartitionsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestOpenBadConfig(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Error("missing DataDir should fail")
	}
	if _, err := Open(Config{DataDir: t.TempDir(), TOccurrence: "bogus"}); err == nil {
		t.Error("unknown TOccurrence should fail")
	}
}

func TestOpenAlgorithms(t *testing.T) {
	for _, algo := range []string{"", "scancount", "mergeskip", "divideskip"} {
		db, err := Open(Config{DataDir: t.TempDir(), TOccurrence: algo})
		if err != nil {
			t.Fatalf("algo %q: %v", algo, err)
		}
		db.Close()
	}
}

func TestInsertJSONAndQuery(t *testing.T) {
	db := openTestDB(t)
	db.MustExecute(`create dataset D primary key id;`)
	if err := db.InsertJSON("D", `{"id": 1, "name": "ann"}`); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertJSON("D", `{bad json`); err == nil {
		t.Error("bad JSON should fail")
	}
	res, err := db.Query(`for $d in dataset D return $d.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Str() != "ann" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestLoadJSONLines(t *testing.T) {
	db := openTestDB(t)
	db.MustExecute(`create dataset D primary key id;`)
	path := filepath.Join(t.TempDir(), "data.jsonl")
	content := `{"id": 1, "v": "x"}

{"id": 2, "v": "y"}
{"id": 3, "v": "z"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := db.LoadJSONLines("D", path)
	if err != nil || n != 3 {
		t.Fatalf("loaded %d, err %v", n, err)
	}
	res := db.MustExecute(`count(for $d in dataset D return $d)`)
	if res.Rows[0].Int() != 3 {
		t.Errorf("count = %v", res.Rows)
	}
	if _, err := db.LoadJSONLines("D", "/nonexistent"); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	os.WriteFile(bad, []byte("{oops\n"), 0o644)
	if _, err := db.LoadJSONLines("D", bad); err == nil {
		t.Error("bad line should fail")
	}
}

func TestSessionStateAcrossExecutes(t *testing.T) {
	db := openTestDB(t)
	sess := db.NewSession()
	ctx := context.Background()
	if _, err := db.Execute(ctx, sess, `create dataset D primary key id;`); err != nil {
		t.Fatal(err)
	}
	db.InsertJSON("D", `{"id": 1, "name": "maria"}`)
	if _, err := db.Execute(ctx, sess, `set simfunction 'edit-distance'; set simthreshold '1';`); err != nil {
		t.Fatal(err)
	}
	// The session remembers the sim settings.
	res, err := db.Execute(ctx, sess, `for $d in dataset D where $d.name ~= 'marla' return $d.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("~= with session settings found %d rows", len(res.Rows))
	}
}

func TestIndexFootprint(t *testing.T) {
	db := openTestDB(t)
	db.MustExecute(`create dataset D primary key id;`)
	for i := 0; i < 50; i++ {
		db.InsertJSON("D", `{"id": `+itoa(i)+`, "text": "alpha beta gamma delta"}`)
	}
	db.Flush()
	db.MustExecute(`create index tix on D(text) type keyword;`)
	db.Flush()
	bytes, entries, err := db.IndexFootprint("D", "tix")
	if err != nil {
		t.Fatal(err)
	}
	if bytes <= 0 || entries != 200 { // 4 tokens × 50 records
		t.Errorf("footprint = %d bytes, %d entries", bytes, entries)
	}
	pBytes, pEntries, err := db.IndexFootprint("D", "")
	if err != nil || pBytes <= 0 || pEntries != 50 {
		t.Errorf("primary footprint = %d, %d, %v", pBytes, pEntries, err)
	}
}

func itoa(i int) string {
	return strings.TrimSpace(strings.Replace(string(rune('0'+i/10))+string(rune('0'+i%10)), "0", "", boolToInt(i < 10)))
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestExplain(t *testing.T) {
	db := openTestDB(t)
	db.MustExecute(`create dataset D primary key id;`)
	ex, err := db.Explain(nil, `
		set simfunction 'jaccard';
		set simthreshold '0.5';
		for $a in dataset D
		for $b in dataset D
		where word-tokens($a.t) ~= word-tokens($b.t)
		return { 'a': $a.id, 'b': $b.id }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if ex.PlanOps < 20 {
		t.Errorf("three-stage plan too small: %d ops", ex.PlanOps)
	}
	if ex.KindCounts["group-by"] < 3 {
		t.Errorf("kind counts = %v", ex.KindCounts)
	}
	if !strings.Contains(ex.Plan, "rank") {
		t.Error("plan text missing rank")
	}
	if _, err := db.Explain(nil, `create dataset X primary key id;`); err == nil {
		t.Error("Explain of DDL should fail")
	}
	if _, err := db.Explain(nil, `use dataverse Default; set simfunction 'jaccard';`); err == nil {
		t.Error("Explain without body should fail")
	}
}

func TestSetTOccurrence(t *testing.T) {
	db := openTestDB(t)
	for _, a := range []string{"scancount", "mergeskip", "divideskip"} {
		if err := db.SetTOccurrence(a); err != nil {
			t.Errorf("SetTOccurrence(%s): %v", a, err)
		}
	}
	if err := db.SetTOccurrence("nope"); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestQueryCancellation(t *testing.T) {
	db := openTestDB(t)
	db.MustExecute(`create dataset D primary key id;`)
	for i := 0; i < 2000; i++ {
		db.InsertJSON("D", `{"id": `+intString(i)+`, "t": "a b c d e f g h"}`)
	}
	db.Flush()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before it starts
	_, err := db.Execute(ctx, nil, `
		for $a in dataset D
		for $b in dataset D
		where similarity-jaccard(word-tokens($a.t), word-tokens($b.t)) >= 0.1
		return $a.id
	`)
	if err == nil {
		t.Error("cancelled query should error")
	}
}

func intString(i int) string {
	digits := "0123456789"
	if i == 0 {
		return "0"
	}
	var out []byte
	for i > 0 {
		out = append([]byte{digits[i%10]}, out...)
		i /= 10
	}
	return string(out)
}

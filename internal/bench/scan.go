package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"simdb/internal/adm"
	"simdb/internal/core"
	"simdb/internal/optimizer"
)

// ScanCell is one configuration point of the scan sweep: a storage
// format crossed with the projection-pushdown and batched-verify
// toggles, all running the same two-field similarity query.
type ScanCell struct {
	Label    string  `json:"label"`
	Format   string  `json:"format"`
	Pushdown bool    `json:"pushdown"`
	Batched  bool    `json:"batched"`
	Rows     int64   `json:"rows"`
	WallMs   float64 `json:"wall_ms"`
}

// ScanReport is the JSON emitted as BENCH_scan.json.
type ScanReport struct {
	Experiment string     `json:"experiment"`
	Scale      int        `json:"scale"`
	Nodes      int        `json:"nodes"`
	Fields     int        `json:"fields_per_record"`
	Cells      []ScanCell `json:"cells"`
	// SpeedupColumnar is row/scan-all wall over columnar/pushdown wall:
	// the end-to-end gain of columnar components plus projection for a
	// query touching 2 of the record's fields.
	SpeedupColumnar float64 `json:"speedup_columnar"`
	// SpeedupBatched is per-tuple verify wall over batched verify wall
	// on the columnar/pushdown configuration.
	SpeedupBatched float64 `json:"speedup_batched"`
}

// ScanBench measures the full-scan similarity query path across the
// storage-format and executor toggles this reproduction adds on top of
// the paper: row versus columnar components, projection pushdown on
// versus off, and per-tuple versus batched verification. The dataset
// is deliberately wide — eight fields, most of them bulky payload the
// query never reads — so the two-field query (summary for the
// similarity predicate, id for the result) isolates how much decode
// and read work each configuration avoids. Each format loads the same
// records into its own fresh database; results go to BENCH_scan.json.
func (e *Env) ScanBench() error {
	e.logf("\n=== Scan: columnar + projection pushdown + batched verify ===\n")
	n := e.Scale
	recs := genWideRecords(n)

	query := `
		for $r in dataset ScanBench
		where similarity-jaccard(word-tokens($r.summary),
		                         word-tokens('orange banana cherry')) >= 0.4
		return $r.id`

	type cellSpec struct {
		format   string
		pushdown bool
		batched  bool
	}
	specs := []cellSpec{
		{"row", false, false},
		{"row", true, false},
		{"columnar", false, false},
		{"columnar", true, false},
		{"columnar", true, true},
	}

	report := ScanReport{Experiment: "scan", Scale: n, Nodes: e.Nodes, Fields: wideFieldCount}
	e.logf("%-22s %10s %9s %9s %8s %12s\n", "config", "format", "pushdown", "batched", "rows", "wall(ms)")
	walls := map[string]time.Duration{}
	for _, format := range []string{"row", "columnar"} {
		dir := filepath.Join(e.Dir, "scan-"+format)
		db, err := openScanDB(dir, e.Nodes, e.PartsPerNode, format, recs)
		if err != nil {
			return fmt.Errorf("scan %s: %w", format, err)
		}
		for _, spec := range specs {
			if spec.format != format {
				continue
			}
			wall, rows, err := timeScanQuery(db, query, spec.pushdown, spec.batched)
			if err != nil {
				db.Close()
				return fmt.Errorf("scan %s: %w", format, err)
			}
			label := spec.format
			if spec.pushdown {
				label += "/pushdown"
			} else {
				label += "/scan-all"
			}
			if spec.batched {
				label += "/batched"
			}
			walls[label] = wall
			cell := ScanCell{
				Label:    label,
				Format:   spec.format,
				Pushdown: spec.pushdown,
				Batched:  spec.batched,
				Rows:     rows,
				WallMs:   float64(wall.Microseconds()) / 1000,
			}
			report.Cells = append(report.Cells, cell)
			e.logf("%-22s %10s %9v %9v %8d %12.2f\n",
				label, spec.format, spec.pushdown, spec.batched, rows, cell.WallMs)
		}
		db.Close()
		_ = os.RemoveAll(dir)
	}

	// Every cell answers the same query, so any row-count disagreement
	// means a correctness bug, not a performance difference.
	for _, c := range report.Cells {
		if c.Rows != report.Cells[0].Rows {
			return fmt.Errorf("scan: cell %s returned %d rows, %s returned %d",
				c.Label, c.Rows, report.Cells[0].Label, report.Cells[0].Rows)
		}
	}

	if w := walls["columnar/pushdown"]; w > 0 {
		report.SpeedupColumnar = float64(walls["row/scan-all"]) / float64(w)
	}
	if w := walls["columnar/pushdown/batched"]; w > 0 {
		report.SpeedupBatched = float64(walls["columnar/pushdown"]) / float64(w)
	}
	e.logf("columnar+pushdown speedup over row scan-all: %.2fx\n", report.SpeedupColumnar)
	e.logf("batched verify speedup over per-tuple:       %.2fx\n", report.SpeedupBatched)

	dir := e.ReportDir
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_scan.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	e.logf("wrote %s\n", path)
	return nil
}

// wideFieldCount is the per-record field count of the scan dataset.
const wideFieldCount = 8

// genWideRecords builds n deterministic eight-field records: a short
// summary the similarity predicate tokenizes, and fat payload fields
// the two-field query never touches.
func genWideRecords(n int) []adm.Value {
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"apple", "orange", "banana", "cherry", "grape", "mango",
		"peach", "plum", "melon", "kiwi", "fig", "lime"}
	payload := func(words int) string {
		var sb strings.Builder
		for i := 0; i < words; i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(vocab[rng.Intn(len(vocab))])
			sb.WriteString(fmt.Sprintf("%04d", rng.Intn(10000)))
		}
		return sb.String()
	}
	recs := make([]adm.Value, 0, n)
	for i := 0; i < n; i++ {
		var sb strings.Builder
		for w, nw := 0, 2+rng.Intn(5); w < nw; w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(vocab[rng.Intn(len(vocab))])
		}
		rec := adm.EmptyRecord(wideFieldCount)
		rec.Set("id", adm.NewInt(int64(i)))
		rec.Set("summary", adm.NewString(sb.String()))
		rec.Set("category", adm.NewString(vocab[rng.Intn(len(vocab))]))
		rec.Set("score", adm.NewInt(int64(rng.Intn(100))))
		rec.Set("payload_a", adm.NewString(payload(24)))
		rec.Set("payload_b", adm.NewString(payload(24)))
		rec.Set("payload_c", adm.NewString(payload(24)))
		rec.Set("payload_d", adm.NewString(payload(24)))
		recs = append(recs, adm.NewRecord(rec))
	}
	return recs
}

// openScanDB opens a fresh database with the given storage format and
// bulk-loads the scan dataset into it.
func openScanDB(dir string, nodes, parts int, format string, recs []adm.Value) (*core.Database, error) {
	db, err := core.Open(core.Config{
		DataDir:           dir,
		NumNodes:          nodes,
		PartitionsPerNode: parts,
		StorageFormat:     format,
	})
	if err != nil {
		return nil, err
	}
	if _, err := db.Query(`create dataset ScanBench primary key id;`); err != nil {
		db.Close()
		return nil, err
	}
	const batch = 512
	for off := 0; off < len(recs); off += batch {
		end := off + batch
		if end > len(recs) {
			end = len(recs)
		}
		if err := db.InsertBatch("ScanBench", recs[off:end]); err != nil {
			db.Close()
			return nil, err
		}
	}
	if err := db.Flush(); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// timeScanQuery runs the query with the given toggles — one warmup,
// then the median wall of three timed runs — and returns the median
// and the row count.
func timeScanQuery(db *core.Database, query string, pushdown, batched bool) (time.Duration, int64, error) {
	sess := sessionWith(func(o *optimizer.Options) {
		o.ProjectionPushdown = pushdown
		o.BatchedVerify = batched
		o.UseIndexes = false
	})
	var rows int64
	run := func() (time.Duration, error) {
		res, err := db.Execute(context.Background(), sess, query)
		if err != nil {
			return 0, err
		}
		rows = int64(len(res.Rows))
		return time.Duration(res.Stats.ExecNs), nil
	}
	if _, err := run(); err != nil {
		return 0, 0, err
	}
	const repeats = 3
	walls := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		w, err := run()
		if err != nil {
			return 0, 0, err
		}
		walls = append(walls, w)
	}
	sort.Slice(walls, func(a, b int) bool { return walls[a] < walls[b] })
	return walls[len(walls)/2], rows, nil
}

package storage

import (
	"bytes"
	"context"
	"sync"
)

// TreeSnapshot is a refcounted read view of an LSM tree: references to
// the tree's memtable generations (the active memtable plus every
// rotated, flush-pending immutable memtable) and its immutable
// disk-component list, acquired under a brief lock. Reads against the
// snapshot then proceed without holding any tree lock, so arbitrarily
// slow scans (operator pipelines running user code per tuple) never
// block writers, flushes, or merges — the component-lifecycle
// discipline of LSM storage managers, where immutable disk components
// exist precisely so readers never block writers.
//
// Semantics: the disk-component list is a true point-in-time view
// (merges retire components only after every snapshot referencing them
// is closed). The active-memtable reference is read-committed — a Get
// or the start of a Scan observes writes applied to the still-live
// memtable after the snapshot was taken; once a rotation retires the
// memtable, the snapshot keeps reading the frozen, no-longer-mutated
// instance. Rotated memtables pinned by the snapshot stay readable
// even after the background flusher installs their disk components:
// a snapshot sees each generation exactly once — either the memtable
// it pinned or a component installed before it was taken, never both.
//
// Close must be called exactly once when done; it is what lets retired
// components drain and delete their files.
type TreeSnapshot struct {
	mems       []*memtable  // newest first: active, then rotated generations
	components []*Component // newest first
	once       sync.Once
}

// Snapshot acquires a read view of the tree. The caller must Close it.
func (t *LSMTree) Snapshot() *TreeSnapshot {
	t.mu.RLock()
	s := &TreeSnapshot{
		mems:       make([]*memtable, 0, 1+len(t.imms)),
		components: make([]*Component, len(t.components)),
	}
	s.mems = append(s.mems, t.mem)
	for _, im := range t.imms {
		s.mems = append(s.mems, im.mt)
	}
	copy(s.components, t.components)
	for _, c := range s.components {
		c.acquire()
	}
	t.mu.RUnlock()
	return s
}

// Close releases the snapshot's component references. Idempotent.
func (s *TreeSnapshot) Close() {
	s.once.Do(func() {
		for _, c := range s.components {
			c.release()
		}
	})
}

// Components returns the number of disk components in the view.
func (s *TreeSnapshot) Components() int { return len(s.components) }

// Get returns the newest value for key in the snapshot, consulting the
// memtable generations newest-first and then disk components
// newest-first through their bloom filters. No tree lock is held.
func (s *TreeSnapshot) Get(key []byte) ([]byte, bool, error) {
	for _, m := range s.mems {
		if v, dead, ok := m.get(key); ok {
			if dead {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	for _, c := range s.components {
		v, ok, err := c.Get(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			val, dead := decodeEntry(v)
			if dead {
				return nil, false, nil
			}
			return val, true, nil
		}
	}
	return nil, false, nil
}

// memCursor merges the sorted ranges of several memtable generations
// (newest first) into one logical stream where the newest generation
// shadows older ones on equal keys.
type memCursor struct {
	lists [][]memKV
	pos   []int
}

func newMemCursor(mems []*memtable, start, end []byte) *memCursor {
	mc := &memCursor{
		lists: make([][]memKV, len(mems)),
		pos:   make([]int, len(mems)),
	}
	for i, m := range mems {
		mc.lists[i] = m.snapshotRange(start, end)
	}
	return mc
}

// peek returns the smallest current key; on ties the newest
// (lowest-index) generation wins.
func (mc *memCursor) peek() (memKV, bool) {
	best := -1
	for i := range mc.lists {
		if mc.pos[i] >= len(mc.lists[i]) {
			continue
		}
		if best < 0 || mc.lists[i][mc.pos[i]].key < mc.lists[best][mc.pos[best]].key {
			best = i
		}
	}
	if best < 0 {
		return memKV{}, false
	}
	return mc.lists[best][mc.pos[best]], true
}

// advance steps every generation positioned on key past it, consuming
// shadowed duplicates.
func (mc *memCursor) advance(key string) {
	for i := range mc.lists {
		if mc.pos[i] < len(mc.lists[i]) && mc.lists[i][mc.pos[i]].key == key {
			mc.pos[i]++
		}
	}
}

// Scan calls fn for each live (key, value) with key in [start, end) in
// key order, merging the memtable generations and all snapshot
// components. fn must not retain its arguments. Iteration stops early
// if fn returns false, or with ctx.Err() once ctx is cancelled
// (checked every few hundred entries). fn runs with no lock held, so a
// slow consumer never starves writers. A nil ctx disables cancellation
// checks.
func (s *TreeSnapshot) Scan(ctx context.Context, start, end []byte, fn func(key, value []byte) bool) error {
	return s.ScanProjected(ctx, start, end, nil, fn)
}

// ScanProjected is Scan restricted to the named top-level record
// fields. Columnar components read only the referenced column blocks
// and yield partial records; memtables and row-format components yield
// full entries — fn receives at least the projected fields either way.
// A nil fields slice scans everything.
func (s *TreeSnapshot) ScanProjected(ctx context.Context, start, end []byte, fields []string, fn func(key, value []byte) bool) error {
	iters := make([]*Iterator, len(s.components))
	for i, c := range s.components {
		iters[i] = c.NewProjectedIterator(start, end, fields)
	}
	merge := newMergeIter(iters)
	diskValid := merge.next()

	mems := newMemCursor(s.mems, start, end)

	const cancelCheckEvery = 512
	steps := 0
	for {
		if ctx != nil {
			if steps++; steps%cancelCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
		mkv, memValid := mems.peek()
		var useMem bool
		switch {
		case memValid && diskValid:
			c := bytes.Compare([]byte(mkv.key), merge.key)
			useMem = c <= 0
			if c == 0 {
				// Memtable shadows disk: skip the disk version.
				diskValid = merge.next()
			}
		case memValid:
			useMem = true
		case diskValid:
			useMem = false
		default:
			return merge.err
		}
		if useMem {
			mems.advance(mkv.key)
			if mkv.e.tombstone {
				continue
			}
			if !fn([]byte(mkv.key), mkv.e.value) {
				return nil
			}
		} else {
			val, dead := decodeEntry(merge.val)
			k := merge.key
			if !dead {
				if !fn(k, val) {
					return nil
				}
			}
			diskValid = merge.next()
		}
	}
}

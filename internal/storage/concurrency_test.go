package storage

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

func newConcTree(t *testing.T, budget int64) *LSMTree {
	t.Helper()
	tree, err := OpenLSM(t.TempDir(), LSMOptions{MemBudgetBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tree.Close() })
	return tree
}

func put(t *testing.T, tree *LSMTree, k, v string) {
	t.Helper()
	if err := tree.Put([]byte(k), []byte(v)); err != nil {
		t.Fatal(err)
	}
}

// TestSlowScanDoesNotBlockPut is the regression test for the latent
// lock-hold bug: Scan used to run its callback (operator pipelines,
// i.e. arbitrary user code) under the tree's RLock, starving writers
// for the whole iteration. With snapshot reads a deliberately slow scan
// must not delay a concurrent Put beyond a small bound.
func TestSlowScanDoesNotBlockPut(t *testing.T) {
	tree := newConcTree(t, 1<<30)
	for i := 0; i < 64; i++ {
		put(t, tree, fmt.Sprintf("k%04d", i), "v")
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}

	scanEntered := make(chan struct{})
	scanRelease := make(chan struct{})
	scanDone := make(chan error, 1)
	go func() {
		first := true
		scanDone <- tree.Scan(nil, nil, func(key, value []byte) bool {
			if first {
				first = false
				close(scanEntered)
				<-scanRelease // hold the scan mid-iteration
			}
			return true
		})
	}()

	<-scanEntered
	// The scan is now parked inside its callback. A Put must still
	// complete promptly.
	start := time.Now()
	put(t, tree, "zzz-new", "fresh")
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("Put blocked %v behind a slow scan", d)
	}
	// Flush and merge must also proceed while the scan is parked.
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tree.Merge(); err != nil {
		t.Fatal(err)
	}
	close(scanRelease)
	if err := <-scanDone; err != nil {
		t.Fatalf("scan: %v", err)
	}

	// The scan's snapshot predates the Put; the new key is visible to a
	// fresh read afterwards.
	if _, ok, err := tree.Get([]byte("zzz-new")); err != nil || !ok {
		t.Fatalf("Get(zzz-new) = %v, %v", ok, err)
	}
}

// TestSnapshotSurvivesMerge verifies component-lifecycle discipline: a
// snapshot taken before a merge keeps reading the retired components,
// and their files are deleted only once the snapshot closes.
func TestSnapshotSurvivesMerge(t *testing.T) {
	tree := newConcTree(t, 1<<30)
	for i := 0; i < 100; i++ {
		put(t, tree, fmt.Sprintf("k%04d", i), fmt.Sprintf("v%d", i))
		if i%25 == 24 {
			if err := tree.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := tree.Snapshot()
	defer snap.Close()
	if snap.Components() < 2 {
		t.Fatalf("want >=2 components in snapshot, got %d", snap.Components())
	}
	var retired []string
	for _, c := range snap.components {
		retired = append(retired, c.Path())
	}

	if err := tree.Merge(); err != nil {
		t.Fatal(err)
	}
	// Old component files must still exist: the snapshot holds them.
	for _, p := range retired {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("retired component %s vanished under a live snapshot: %v", p, err)
		}
	}
	// The snapshot still reads a complete, consistent view.
	n := 0
	if err := snap.Scan(nil, nil, nil, func(key, value []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("snapshot scan saw %d keys, want 100", n)
	}
	snap.Close()
	for _, p := range retired {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("retired component %s not deleted after snapshot close (err=%v)", p, err)
		}
	}
}

// TestScanContextCancel verifies cooperative cancellation: a cancelled
// context stops a scan early with the context's error.
func TestScanContextCancel(t *testing.T) {
	tree := newConcTree(t, 1<<30)
	for i := 0; i < 5000; i++ {
		put(t, tree, fmt.Sprintf("k%06d", i), "v")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 0
	err := tree.ScanContext(ctx, nil, nil, func(key, value []byte) bool { n++; return true })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n >= 5000 {
		t.Fatalf("cancelled scan still visited all %d keys", n)
	}
}

// TestConcurrentReadersWriters hammers the tree with parallel scans,
// gets, puts, flushes, and merges under -race.
func TestConcurrentReadersWriters(t *testing.T) {
	tree := newConcTree(t, 4<<10) // tiny budget: frequent flush/merge
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	report := func(err error) {
		if err != nil {
			select {
			case errs <- err:
			default:
			}
		}
	}

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				report(tree.Put([]byte(fmt.Sprintf("w%d-%05d", w, i%500)), []byte(fmt.Sprintf("v%d", i))))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				report(tree.Scan(nil, nil, func(key, value []byte) bool { return true }))
				_, _, err := tree.Get([]byte("w0-00001"))
				report(err)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			report(tree.Merge())
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// Social-media analysis: a multi-way similarity query across datasets —
// the paper's headline optimizer capability ("the first parallel data
// management system to support similarity queries with multiple
// similarity joins"). We look for tweet authors whose display name is a
// near-match of a reviewer's name AND whose tweet text is set-similar
// to that reviewer's summary, combining an edit-distance predicate and
// a Jaccard predicate in one query. A UDF shows the custom-measure
// extension point.
package main

import (
	"fmt"
	"log"
	"os"

	"simdb/internal/adm"
	"simdb/internal/core"
	"simdb/internal/datagen"
)

func main() {
	dir, err := os.MkdirTemp("", "simdb-social-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := core.Open(core.Config{DataDir: dir, NumNodes: 2, PartitionsPerNode: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.MustExecute(`create dataset Reviews primary key id;`)
	db.MustExecute(`create dataset Tweets primary key id;`)
	load := func(kind datagen.Kind, dataset string, n int) {
		if err := datagen.Generate(kind, n, datagen.Options{Seed: 21}, func(v adm.Value) error {
			return db.Insert(dataset, v)
		}); err != nil {
			log.Fatal(err)
		}
	}
	load(datagen.Amazon, "Reviews", 3000)
	load(datagen.Twitter, "Tweets", 3000)
	// Some users quote their own product reviews on social media: the
	// cross-dataset near-matches the analyst is hunting for.
	var firstName string
	if err := datagen.Generate(datagen.Amazon, 3000, datagen.Options{Seed: 21}, func(v adm.Value) error {
		rec := v.Rec()
		idv, _ := rec.Get("id")
		if idv.Int() > 40 || idv.Int()%3 != 0 {
			return nil
		}
		name, _ := rec.Get("reviewerName")
		summary, _ := rec.Get("summary")
		if firstName == "" {
			firstName = name.Str()
		}
		user := adm.EmptyRecord(1)
		user.Set("name", name)
		tw := adm.EmptyRecord(3)
		tw.Set("id", adm.NewInt(100000+idv.Int()))
		tw.Set("text", adm.NewString(summary.Str()+" so true"))
		tw.Set("user", adm.NewRecord(user))
		return db.Insert("Tweets", adm.NewRecord(tw))
	}); err != nil {
		log.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	db.MustExecute(`create index tw_text on Tweets(text) type keyword;`)
	db.MustExecute(`create index tw_name on Tweets(user.name) type ngram(2);`)

	// Two similarity predicates in one query: the optimizer picks an
	// index for the first and verifies the second as a filter
	// (paper §6.4.3).
	res := db.MustExecute(`
		for $r in dataset Reviews
		for $t in dataset Tweets
		where $r.id < 50
		  and similarity-jaccard(word-tokens($r.summary), word-tokens($t.text)) >= 0.6
		  and edit-distance($r.reviewerName, $t.user.name) <= 2
		return { 'reviewer': $r.reviewerName, 'tweeter': $t.user.name,
		         'summary': $r.summary, 'tweet': $t.text }
	`)
	fmt.Printf("multi-predicate join matched %d (reviewer, tweeter) pairs in %.1f ms\n",
		len(res.Rows), float64(res.Stats.ExecNs)/1e6)
	for i, r := range res.Rows {
		if i >= 5 {
			break
		}
		fmt.Println(" ", r)
	}

	// A user-defined similarity measure (paper §3.1): a UDF combining
	// token overlap with a name check, usable anywhere a builtin is.
	res = db.MustExecute(fmt.Sprintf(`
		create function handle-affinity($a, $b) {
			jaro-winkler(lowercase($a), lowercase($b))
		};
		for $t in dataset Tweets
		where handle-affinity($t.user.name, '%s') >= 0.9
		return $t.user.name
	`, firstName))
	fmt.Printf("\nUDF search found %d affine handles:\n", len(res.Rows))
	seen := map[string]bool{}
	for _, r := range res.Rows {
		if !seen[r.Str()] {
			seen[r.Str()] = true
			fmt.Println(" ", r.Str())
		}
	}
}

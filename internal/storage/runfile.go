package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"simdb/internal/obs"
)

// Spill run-file instrumentation: runs and bytes accumulate across the
// process; the per-run size histogram shows how large individual spill
// runs get relative to the operator budgets producing them.
var (
	spillRunsCreated  = obs.C("storage.spill.runs_created")
	spillBytesWritten = obs.C("storage.spill.bytes_written")
	spillBytesRead    = obs.C("storage.spill.bytes_read")
	spillRunSize      = obs.H("storage.spill.run_bytes")
)

// runBufSize is the buffered-I/O granularity for run files — one
// storage page of sequential write (or read) per syscall.
const runBufSize = 32 << 10

// RunFileManager owns every temporary spill file of one query. All
// files live under a private directory that Close removes wholesale,
// so run-file lifetime is tied to the query: whether the query
// finishes, is cancelled, times out, or panics, the deferred Close in
// the query layer leaves nothing on disk. Create and Close are safe to
// call from concurrent operator instances of the same query.
type RunFileManager struct {
	dir string

	mu      sync.Mutex
	created bool
	closed  bool
	seq     int
}

// NewRunFileManager returns a manager rooted at dir. The directory is
// created lazily on the first Create, so spill-free queries never touch
// the filesystem.
func NewRunFileManager(dir string) *RunFileManager {
	return &RunFileManager{dir: dir}
}

// Dir returns the manager's root directory (which may not exist yet).
func (m *RunFileManager) Dir() string { return m.dir }

// Create opens a new run file for writing. The label only names the
// file for debugging (e.g. "sort", "join-build-p3").
func (m *RunFileManager) Create(label string) (*RunWriter, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errors.New("storage: run-file manager closed")
	}
	if !m.created {
		if err := os.MkdirAll(m.dir, 0o755); err != nil {
			return nil, err
		}
		m.created = true
	}
	m.seq++
	path := filepath.Join(m.dir, fmt.Sprintf("run%05d-%s.tmp", m.seq, sanitizeLabel(label)))
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	spillRunsCreated.Inc()
	return &RunWriter{f: f, w: bufio.NewWriterSize(f, runBufSize), path: path}, nil
}

// Close removes the manager's directory and every run file in it,
// including files still nominally open (their readers/writers fail
// afterwards, which only happens on cancelled queries). Idempotent.
func (m *RunFileManager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if !m.created {
		return nil
	}
	return os.RemoveAll(m.dir)
}

// sanitizeLabel keeps run-file names filesystem-safe.
func sanitizeLabel(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "run"
	}
	return string(out)
}

// RunWriter writes one spill run: a sequence of length-prefixed records
// (uvarint length + payload) streamed through a page-sized buffer.
type RunWriter struct {
	f       *os.File
	w       *bufio.Writer
	path    string
	lenBuf  [binary.MaxVarintLen64]byte
	bytes   int64
	records int64
}

// Append writes one record.
func (w *RunWriter) Append(rec []byte) error {
	n := binary.PutUvarint(w.lenBuf[:], uint64(len(rec)))
	if _, err := w.w.Write(w.lenBuf[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(rec); err != nil {
		return err
	}
	w.bytes += int64(n + len(rec))
	w.records++
	return nil
}

// Bytes returns the bytes appended so far (including length prefixes).
func (w *RunWriter) Bytes() int64 { return w.bytes }

// Records returns the record count appended so far.
func (w *RunWriter) Records() int64 { return w.records }

// Finish flushes and closes the file, returning the completed run.
func (w *RunWriter) Finish() (*RunFile, error) {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return nil, err
	}
	if err := w.f.Close(); err != nil {
		return nil, err
	}
	spillBytesWritten.Add(w.bytes)
	spillRunSize.Observe(w.bytes)
	return &RunFile{path: w.path, bytes: w.bytes, records: w.records}, nil
}

// Abort closes and deletes a half-written run.
func (w *RunWriter) Abort() {
	w.f.Close()
	os.Remove(w.path)
}

// RunFile is a completed spill run. It may be Opened multiple times,
// sequentially or concurrently (each Open returns an independent
// reader) — block-nested-loop joins and replicate fan-out re-read runs.
type RunFile struct {
	path    string
	bytes   int64
	records int64
}

// Bytes returns the run's on-disk size (payload plus length prefixes).
func (f *RunFile) Bytes() int64 { return f.bytes }

// Records returns the number of records in the run.
func (f *RunFile) Records() int64 { return f.records }

// Open returns a sequential reader over the run's records.
func (f *RunFile) Open() (*RunReader, error) {
	file, err := os.Open(f.path)
	if err != nil {
		return nil, err
	}
	return &RunReader{f: file, r: bufio.NewReaderSize(file, runBufSize)}, nil
}

// Close deletes the run file. The manager's Close removes the whole
// directory anyway; deleting runs eagerly frees disk as soon as an
// operator is done merging them.
func (f *RunFile) Close() error {
	err := os.Remove(f.path)
	if err != nil && os.IsNotExist(err) {
		return nil // manager already swept the directory
	}
	return err
}

// RunReader iterates a run's records in write order. The returned
// slice is only valid until the next call to Next.
type RunReader struct {
	f   *os.File
	r   *bufio.Reader
	buf []byte
}

// Next returns the next record, or io.EOF after the last one.
func (r *RunReader) Next() ([]byte, error) {
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("storage: run record length: %w", err)
	}
	if uint64(cap(r.buf)) < n {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return nil, fmt.Errorf("storage: run record body: %w", err)
	}
	spillBytesRead.Add(int64(n))
	return r.buf, nil
}

// Close releases the reader (the file stays on disk until RunFile.Close).
func (r *RunReader) Close() error { return r.f.Close() }

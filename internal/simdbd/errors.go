package simdbd

import (
	"context"
	"errors"
	"net/http"

	"simdb/internal/cluster"
)

// Error codes on the wire. Stable: clients and the load generator
// branch on these, not on message text.
const (
	codeBadQuery         = "bad-query"         // 400: parse/plan/statement errors
	codeForbidden        = "forbidden"         // 403: tenant-scope violation
	codeNotFound         = "not-found"         // 404: unknown session/dataset/query
	codeTooManySessions  = "too-many-sessions" // 429: session table full
	codeAdmissionTimeout = "admission-timeout" // 503: admission pool exhausted
	codeQueryTimeout     = "query-timeout"     // 504: per-query execution deadline
	codeCanceled         = "canceled"          // 499: client went away
	codeInternal         = "internal"          // 500: engine/runtime failure
)

// statusClientClosed mirrors nginx's non-standard 499 "client closed
// request". It never reaches the client (the client is gone) but keeps
// metrics and mid-stream error records honest about who failed whom.
const statusClientClosed = 499

// classify maps an engine error onto the wire taxonomy. The typed
// serving errors carry their own statuses; PlanError marks
// client-caused failures (400); context cancellation means the client
// disconnected; anything else is an internal failure.
func classify(err error) *wireError {
	we := &wireError{Message: err.Error()}
	var qe *cluster.QueryError
	if errors.As(err, &qe) {
		we.QueryID = qe.QueryID
	}
	var pe *cluster.PlanError
	switch {
	case errors.Is(err, cluster.ErrAdmissionTimeout):
		we.Code, we.Status = codeAdmissionTimeout, http.StatusServiceUnavailable
		we.RetryAfter = 1
	case errors.Is(err, cluster.ErrQueryTimeout):
		we.Code, we.Status = codeQueryTimeout, http.StatusGatewayTimeout
	case errors.Is(err, cluster.ErrAdmissionCanceled),
		errors.Is(err, context.Canceled):
		we.Code, we.Status = codeCanceled, statusClientClosed
	case errors.As(err, &pe):
		we.Code, we.Status = codeBadQuery, http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		// The caller's own deadline (not the engine's) expired mid-run.
		we.Code, we.Status = codeQueryTimeout, http.StatusGatewayTimeout
	default:
		we.Code, we.Status = codeInternal, http.StatusInternalServerError
	}
	return we
}

// wireErrf builds a non-engine wire error (session, tenant, decode).
func wireErrf(code string, status int, msg string) *wireError {
	return &wireError{Code: code, Status: status, Message: msg}
}

package algebra

import (
	"math/rand"
	"testing"

	"simdb/internal/adm"
)

// testCols is the column layout the differential tests compile against:
// three bound variables plus $9, which is deliberately unbound so the
// unbound-variable error path is exercised.
var testCols = map[Var]int{1: 0, 2: 1, 3: 2}

// testRows cover the full layout, a short row (column out of row), and
// rows with nulls and mixed kinds.
var testRows = [][]adm.Value{
	{adm.NewInt(7), adm.NewString("quick brown fox"), adm.NewDouble(0.5)},
	{adm.NewInt(-3), adm.NewString(""), adm.Null},
	{adm.Null, adm.NewStringList([]string{"a", "b"}), adm.NewBool(true)},
	{adm.NewInt(1)}, // short: columns 1 and 2 are out of row
	{adm.NewRecord(adm.NewRecordFromFields([]string{"f", "g"}, []adm.Value{adm.NewString("hello world"), adm.NewInt(4)})),
		adm.NewString("f"), adm.NewDouble(2)},
}

// assertSame evaluates e both ways over every test row and requires
// identical outcomes: same value (by ADM rendering, which distinguishes
// kinds) or same error string.
func assertSame(t *testing.T, e Expr) {
	t.Helper()
	fn, ok := Compile(e, testCols)
	if !ok {
		t.Fatalf("Compile declined %s", e)
	}
	env := NewEnv(testCols, nil)
	for i, row := range testRows {
		env.Reset(row)
		iv, ierr := Eval(e, env)
		cv, cerr := fn(row)
		if (ierr == nil) != (cerr == nil) {
			t.Fatalf("row %d, expr %s: interpreted err=%v, compiled err=%v", i, e, ierr, cerr)
		}
		if ierr != nil {
			if ierr.Error() != cerr.Error() {
				t.Fatalf("row %d, expr %s: error text diverged:\n  interpreted: %v\n  compiled:    %v", i, e, ierr, cerr)
			}
			continue
		}
		if iv.Kind() != cv.Kind() || iv.String() != cv.String() {
			t.Fatalf("row %d, expr %s: interpreted %v (%v), compiled %v (%v)", i, e, iv, iv.Kind(), cv, cv.Kind())
		}
	}
}

func TestCompileMatchesEvalFixed(t *testing.T) {
	exprs := []Expr{
		CInt(42),
		V(1),
		V(9), // unbound
		V(3), // out of row on the short row
		F("eq", V(1), CInt(7)),
		F("lt", V(1), V(3)),
		F("ge", F("add", V(1), CInt(1)), CInt(8)),
		F("add", V(1), V(3)),
		F("mul", CInt(6), CInt(7)),                                  // folds
		F("div", CInt(1), CInt(0)),                                  // folds to an error
		F("and", C(adm.NewBool(false)), F("div", CInt(1), CInt(0))), // short-circuit past folded error
		F("or", F("eq", V(1), CInt(7)), F("div", CInt(1), CInt(0))),
		F("and", F("gt", V(1), CInt(0)), F("lt", V(1), CInt(100))),
		F("not", F("is-null", V(3))),
		F("not", V(2)), // not on a string -> error
		F("field-access", V(1), CStr("f")),
		F("field-access", V(1), CStr("missing")),
		F("similarity-jaccard", F("word-tokens", V(2)), F("word-tokens", CStr("quick fox"))),
		F("similarity-jaccard-check", F("word-tokens", V(2)), F("word-tokens", CStr("quick brown fox")), C(adm.NewDouble(0.8))),
		F("edit-distance", V(2), CStr("quick brown fix")),
		F("prefix-len-jaccard", F("len", F("word-tokens", CStr("a b c d"))), C(adm.NewDouble(0.8))), // folds
		F("t-occurrence-jaccard", CInt(5), C(adm.NewDouble(0.8))),                                   // folds
		F("no-such-function", V(1)),
		F("no-such-function", F("div", CInt(1), CInt(0))), // arg error wins over unknown-function
		F("eq", V(1)),              // wrong arity -> builtin arity error
		F("add", V(1), V(1), V(1)), // wrong arity for fused arith
		F("len", V(2)),
		F("list", V(1), V(2), V(3)),
		F("record", CStr("k"), V(1)),
		F("record", V(1), V(2)), // field name not a string on most rows
	}
	for _, e := range exprs {
		assertSame(t, e)
	}
}

// TestCompileDeclinesComprehension: anything containing a comprehension
// or name reference falls back to the interpreter.
func TestCompileDeclinesComprehension(t *testing.T) {
	comp := Comprehension{
		Clauses: []CompClause{{Kind: "for", V: "x", E: V(2)}},
		Ret:     NameRef{Name: "x"},
	}
	for _, e := range []Expr{comp, F("len", comp), NameRef{Name: "x"}} {
		if _, ok := Compile(e, testCols); ok {
			t.Fatalf("Compile accepted %s; want decline", e)
		}
	}
}

// TestCompileConstFoldShared: a folded constant is computed once and the
// resulting closure is safe to share across goroutines.
func TestCompileConstFoldShared(t *testing.T) {
	e := F("word-tokens", CStr("the quick brown fox"))
	fn, ok := Compile(e, testCols)
	if !ok {
		t.Fatal("Compile declined")
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				v, err := fn(nil)
				if err != nil {
					done <- err
					return
				}
				if len(v.Elems()) != 4 {
					done <- errUnexpected
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errUnexpected = &tokenCountError{}

type tokenCountError struct{}

func (*tokenCountError) Error() string { return "unexpected token count" }

// genExpr builds a random expression over the test layout. It only
// emits compilable forms (no comprehensions), including unknown
// functions, wrong arities, unbound variables, and nulls, so the error
// paths are compared too.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(7) {
		case 0:
			return CInt(int64(r.Intn(21) - 10))
		case 1:
			return C(adm.NewDouble(float64(r.Intn(100)) / 10))
		case 2:
			return CStr([]string{"", "fox", "quick brown fox", "hello world"}[r.Intn(4)])
		case 3:
			return C(adm.NewBool(r.Intn(2) == 0))
		case 4:
			return C(adm.Null)
		default:
			return V(Var(r.Intn(5))) // 0 and 4 are unbound
		}
	}
	sub := func() Expr { return genExpr(r, depth-1) }
	switch r.Intn(14) {
	case 0:
		return F([]string{"eq", "neq", "lt", "le", "gt", "ge"}[r.Intn(6)], sub(), sub())
	case 1:
		return F([]string{"add", "sub", "mul", "div", "mod"}[r.Intn(5)], sub(), sub())
	case 2:
		return F("and", sub(), sub())
	case 3:
		return F("or", sub(), sub(), sub())
	case 4:
		return F("not", sub())
	case 5:
		return F("is-null", sub())
	case 6:
		return F("field-access", sub(), sub())
	case 7:
		return F("word-tokens", sub())
	case 8:
		return F("similarity-jaccard", F("word-tokens", sub()), F("word-tokens", sub()))
	case 9:
		return F("len", sub())
	case 10:
		return F("list", sub(), sub())
	case 11:
		return F("edit-distance", sub(), sub())
	case 12:
		// Wrong arities and unknown functions: error paths must agree too.
		return F([]string{"eq", "not", "no-such-fn"}[r.Intn(3)], sub())
	default:
		return F("neg", sub())
	}
}

// TestCompileMatchesEvalRandom is the differential property test: many
// random expressions, every outcome identical between the compiler and
// the interpreter.
func TestCompileMatchesEvalRandom(t *testing.T) {
	r := rand.New(rand.NewSource(20260809))
	for i := 0; i < 2000; i++ {
		assertSame(t, genExpr(r, 1+r.Intn(4)))
	}
}

// FuzzCompiledEval drives the same differential property from a fuzzed
// seed: the input bytes seed the expression generator, so the corpus
// explores expression shapes rather than raw syntax.
func FuzzCompiledEval(f *testing.F) {
	f.Add(int64(1), 3)
	f.Add(int64(42), 5)
	f.Add(int64(-7), 2)
	f.Fuzz(func(t *testing.T, seed int64, depth int) {
		if depth < 0 || depth > 6 {
			t.Skip()
		}
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, depth)
		fn, ok := Compile(e, testCols)
		if !ok {
			t.Fatalf("generator emitted a non-compilable expression: %s", e)
		}
		env := NewEnv(testCols, nil)
		for _, row := range testRows {
			env.Reset(row)
			iv, ierr := Eval(e, env)
			cv, cerr := fn(row)
			if (ierr == nil) != (cerr == nil) {
				t.Fatalf("expr %s: interpreted err=%v, compiled err=%v", e, ierr, cerr)
			}
			if ierr != nil {
				if ierr.Error() != cerr.Error() {
					t.Fatalf("expr %s: error text diverged: %v vs %v", e, ierr, cerr)
				}
				continue
			}
			if iv.Kind() != cv.Kind() || iv.String() != cv.String() {
				t.Fatalf("expr %s: interpreted %v, compiled %v", e, iv, cv)
			}
		}
	})
}

// The Eval benchmarks measure the paper's per-tuple cost three ways:
// the interpreter with a per-tuple Env (the pre-refactor shape), the
// interpreter with a reused Env, and the compiled closure.
var benchExpr = F("ge",
	F("similarity-jaccard", F("word-tokens", V(2)), F("word-tokens", CStr("quick brown fox jumps"))),
	C(adm.NewDouble(0.3)))

var benchRow = []adm.Value{adm.NewInt(1), adm.NewString("the quick brown fox jumps over the lazy dog"), adm.NewDouble(0.5)}

func BenchmarkEvalInterpretedNewEnv(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Eval(benchExpr, NewEnv(testCols, benchRow)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalInterpretedReusedEnv(b *testing.B) {
	env := NewEnv(testCols, nil)
	for i := 0; i < b.N; i++ {
		env.Reset(benchRow)
		if _, err := Eval(benchExpr, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalCompiled(b *testing.B) {
	fn, ok := Compile(benchExpr, testCols)
	if !ok {
		b.Fatal("Compile declined")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(benchRow); err != nil {
			b.Fatal(err)
		}
	}
}

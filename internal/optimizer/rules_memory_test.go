package optimizer

import (
	"testing"

	"simdb/internal/algebra"
)

func groupByHints(plan *algebra.Op) (hashed, total int) {
	algebra.Walk(plan, func(op *algebra.Op) {
		if op.Kind == algebra.OpGroupBy {
			total++
			if op.HashHint {
				hashed++
			}
		}
	})
	return
}

func TestHashGroupBudgetRule(t *testing.T) {
	src := `for $r in dataset ARevs
	        /*+ hash */ group by $g := $r.summary with $r
	        return { 'g': $g, 'n': count($r) }`
	cases := []struct {
		name     string
		budget   int64
		wantHash bool
	}{
		{"unlimited", 0, true},
		{"generous", 32 << 20, true},
		{"at-threshold", tightBudgetThreshold, false},
		{"tight", 64 << 10, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			plan := compile(t, newTestCatalog(),
				Options{MemoryBudgetBytes: c.budget}, src)
			hashed, total := groupByHints(plan)
			if total == 0 {
				t.Fatal("plan lost its group-by")
			}
			if got := hashed > 0; got != c.wantHash {
				t.Errorf("budget %d: hash hint = %v, want %v", c.budget, got, c.wantHash)
			}
		})
	}
	// Unhinted group-bys are untouched either way.
	plain := `for $r in dataset ARevs
	          group by $g := $r.summary with $r
	          return { 'g': $g, 'n': count($r) }`
	plan := compile(t, newTestCatalog(),
		Options{MemoryBudgetBytes: 64 << 10}, plain)
	if hashed, total := groupByHints(plan); total == 0 || hashed != 0 {
		t.Fatalf("plain group-by: hashed=%d total=%d", hashed, total)
	}
}

package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestPutNeverBlocksOnMaintenance is the acceptance test for the
// ingestion-pipeline refactor: a Put issued while a merge is
// artificially held mid-flight must return without waiting for the
// merge (the old write path ran flush + full merge on the writer's
// goroutine under the tree mutex).
func TestPutNeverBlocksOnMaintenance(t *testing.T) {
	tree, err := OpenLSM(t.TempDir(), LSMOptions{MemBudgetBytes: 1 << 30, MaxComponents: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	mergeEntered := make(chan struct{})
	mergeRelease := make(chan struct{})
	tree.testMergeDelay = func() {
		close(mergeEntered)
		<-mergeRelease
	}

	// Build up components past the policy threshold so the background
	// merge kicks in and parks on the hook.
	for c := 0; c < 3; c++ {
		for i := 0; i < 32; i++ {
			if err := tree.Put([]byte(fmt.Sprintf("c%d-%04d", c, i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		if err := tree.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-mergeEntered:
	case <-time.After(5 * time.Second):
		t.Fatal("background merge never started")
	}

	// The merge is parked mid-flight. Puts — including ones that rotate
	// the memtable — must complete promptly.
	start := time.Now()
	for i := 0; i < 1000; i++ {
		if err := tree.Put([]byte(fmt.Sprintf("during-%05d", i)), []byte("fresh")); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("Puts blocked %v behind an in-flight merge", d)
	}
	close(mergeRelease)

	if err := tree.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := tree.Get([]byte("during-00042")); err != nil || !ok || string(v) != "fresh" {
		t.Fatalf("Get(during-00042) = %q, %v, %v", v, ok, err)
	}
	if v, ok, err := tree.Get([]byte("c1-0007")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get(c1-0007) = %q, %v, %v", v, ok, err)
	}
}

// TestRotationDurability covers the immutable-memtable stage: writes
// that rotated but were never flushed must survive Close + reopen.
func TestRotationDurability(t *testing.T) {
	dir := t.TempDir()
	// MaxImmutable is high so the gated flusher below piles up
	// rotations without stalling the writer.
	tree, err := OpenLSM(dir, LSMOptions{MemBudgetBytes: 256, MaxImmutable: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the background flusher so rotations pile up in the
	// immutable stage.
	flushRelease := make(chan struct{})
	tree.testFlushDelay = func() { <-flushRelease }

	const n = 200
	for i := 0; i < n; i++ {
		if err := tree.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s := tree.Stats(); s.ImmMemtables == 0 {
		t.Fatal("test setup: expected rotated memtables pending flush")
	}
	close(flushRelease)
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%04d", i)
		v, ok, err := re.Get([]byte(k))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after restart Get(%s) = %q, %v, %v", k, v, ok, err)
		}
	}
}

// TestWriteStallBackpressure verifies that writers stall — rather than
// grow memory without bound — once rotated memtables pile past
// MaxImmutable, and resume when the flusher catches up.
func TestWriteStallBackpressure(t *testing.T) {
	tree, err := OpenLSM(t.TempDir(), LSMOptions{MemBudgetBytes: 256, MaxImmutable: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	flushGate := make(chan struct{})
	tree.testFlushDelay = func() { <-flushGate }

	before := stallCount.Load()
	done := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 500 && err == nil; i++ {
			err = tree.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("0123456789012345678901234567890123456789"))
		}
		done <- err
	}()

	select {
	case err := <-done:
		t.Fatalf("writer finished without stalling (err=%v); backpressure never engaged", err)
	case <-time.After(200 * time.Millisecond):
		// Writer is stalled behind the gated flusher, as intended.
	}
	close(flushGate) // let maintenance drain; the writer must resume
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := stallCount.Load(); got <= before {
		t.Errorf("stall counter did not increase (before=%d after=%d)", before, got)
	}
	if err := tree.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := tree.Get([]byte("k00499")); !ok || err != nil {
		t.Fatalf("post-stall Get = %v, %v", ok, err)
	}
}

// pickNewestPolicy merges the newest `at` components whenever at least
// that many exist — a deliberately different shape from TieredPolicy,
// proving the policy seam extracted from the old inline merge works.
type pickNewestPolicy struct{ at int }

func (p pickNewestPolicy) Pick(cs []ComponentStats) int {
	if len(cs) >= p.at {
		return p.at
	}
	return 0
}

// TestMergePolicyPluggable runs a custom partial-merge policy and
// checks both that it is consulted and that partial merges preserve
// data and recency across restart.
func TestMergePolicyPluggable(t *testing.T) {
	dir := t.TempDir()
	tree, err := OpenLSM(dir, LSMOptions{
		MemBudgetBytes: 1 << 30,
		MergePolicy:    pickNewestPolicy{at: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each generation overwrites key "shared" so recency order is
	// observable, plus a private key so coverage is observable.
	for g := 0; g < 5; g++ {
		if err := tree.Put([]byte("shared"), []byte(fmt.Sprintf("gen%d", g))); err != nil {
			t.Fatal(err)
		}
		if err := tree.Put([]byte(fmt.Sprintf("own-%d", g)), []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := tree.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Quiesce(); err != nil {
		t.Fatal(err)
	}
	s := tree.Stats()
	if s.DiskComponents >= 5 {
		t.Fatalf("custom policy never merged: %d components", s.DiskComponents)
	}
	if v, ok, _ := tree.Get([]byte("shared")); !ok || string(v) != "gen4" {
		t.Fatalf("recency lost under partial merges: shared=%q ok=%v", v, ok)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if v, ok, _ := re.Get([]byte("shared")); !ok || string(v) != "gen4" {
		t.Fatalf("recency lost across restart: shared=%q ok=%v", v, ok)
	}
	for g := 0; g < 5; g++ {
		if _, ok, _ := re.Get([]byte(fmt.Sprintf("own-%d", g))); !ok {
			t.Fatalf("own-%d lost across restart", g)
		}
	}
}

// TestStepPolicy exercises the second built-in policy's partial-merge
// arithmetic directly.
func TestStepPolicy(t *testing.T) {
	p := StepPolicy{Step: 2, Ratio: 2}
	small := ComponentStats{Entries: 10, Bytes: 100}
	big := ComponentStats{Entries: 1000, Bytes: 1 << 20}
	if got := p.Pick([]ComponentStats{small, small}); got != 0 {
		t.Errorf("below step: Pick = %d, want 0", got)
	}
	// Run of 3 small: trigger, and the third (similar size) is absorbed.
	if got := p.Pick([]ComponentStats{small, small, small}); got != 3 {
		t.Errorf("small run: Pick = %d, want 3", got)
	}
	// Big tail outside ratio stays untouched.
	if got := p.Pick([]ComponentStats{small, small, small, big}); got != 3 {
		t.Errorf("big tail: Pick = %d, want 3", got)
	}
}

// TestBackgroundMaintenanceStress mixes writers, snapshot scans, point
// reads, forced flushes, and background merges under -race, and then
// checks the surviving state against a model.
func TestBackgroundMaintenanceStress(t *testing.T) {
	sched := NewScheduler(2)
	defer sched.Close()
	tree, err := OpenLSM(t.TempDir(), LSMOptions{
		MemBudgetBytes: 2 << 10,
		MaxComponents:  3,
		Maintenance:    sched,
		MaxImmutable:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	report := func(err error) {
		if err != nil {
			select {
			case errs <- err:
			default:
			}
		}
	}

	var mu sync.Mutex
	model := map[string]string{} // final write per key, by writer section
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("w%d-%03d", w, r.Intn(200))
				v := fmt.Sprintf("v%d", i)
				if err := tree.Put([]byte(k), []byte(v)); err != nil {
					report(err)
					return
				}
				mu.Lock()
				model[k] = v
				mu.Unlock()
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// A scan must never observe a torn view: keys strictly
				// ascending, each at most once.
				last := ""
				report(tree.Scan(nil, nil, func(k, v []byte) bool {
					if string(k) <= last && last != "" {
						report(fmt.Errorf("scan order violated: %q after %q", k, last))
						return false
					}
					last = string(k)
					return true
				}))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			report(tree.Flush())
			time.Sleep(2 * time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	if err := tree.Quiesce(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	checked := 0
	for k, want := range model {
		v, ok, err := tree.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("model mismatch at %s: got %q ok=%v err=%v want %q", k, v, ok, err, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("stress produced no writes")
	}
}

// TestSchedulerSharedAcrossTrees runs many trees on one small pool —
// the per-node topology the cluster layer uses — and quiesces them all.
func TestSchedulerSharedAcrossTrees(t *testing.T) {
	sched := NewScheduler(2)
	defer sched.Close()
	var trees []*LSMTree
	for i := 0; i < 6; i++ {
		tree, err := OpenLSM(t.TempDir(), LSMOptions{MemBudgetBytes: 512, Maintenance: sched})
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
	}
	for i, tree := range trees {
		for j := 0; j < 100; j++ {
			if err := tree.Put([]byte(fmt.Sprintf("t%d-%04d", i, j)), []byte("payload-payload")); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, tree := range trees {
		if err := tree.Quiesce(); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := tree.Get([]byte(fmt.Sprintf("t%d-0099", i))); !ok || err != nil {
			t.Fatalf("tree %d lost data: ok=%v err=%v", i, ok, err)
		}
		if err := tree.Close(); err != nil {
			t.Fatal(err)
		}
	}
	st := sched.Stats()
	if st.Pending != 0 || st.Running != 0 {
		t.Errorf("scheduler not drained after closes: %+v", st)
	}
}

package cluster

import (
	"context"
	"fmt"
	"time"

	"simdb/internal/adm"
	"simdb/internal/algebra"
	"simdb/internal/aqlp"
	"simdb/internal/hyracks"
	"simdb/internal/optimizer"
)

// QueryStats reports one query's execution profile.
type QueryStats struct {
	ParseNs     int64
	TranslateNs int64
	OptimizeNs  int64
	JobGenNs    int64
	ExecNs      int64 // real wall time of the parallel job

	// EstimatedParallel is the cost model's makespan estimate for the
	// configured node count (see Config.CostModel) — the number the
	// scale-out/speed-up experiments report.
	EstimatedParallel time.Duration

	MaxNodeBusyNs int64
	TotalBusyNs   int64
	MaxNodeTuples int64
	BytesShuffled int64
	NetMessages   int64

	IndexSearches   int64
	CandidatesTotal int64
	PostingsRead    int64

	PlanOps     int
	LogicalPlan string
	PhysicalOps []hyracks.OpStats
	RuleTrace   []string
}

// Result is a query's outcome.
type Result struct {
	Rows  []adm.Value
	Stats QueryStats
}

// Session carries statement-scoped state (use/set) across Execute calls.
type Session struct {
	Dataverse    string
	SimFunction  string
	SimThreshold string
	// Opts overrides the optimizer options; nil means defaults.
	Opts *optimizer.Options
}

// NewSession returns a session with the Default dataverse.
func NewSession() *Session { return &Session{Dataverse: "Default"} }

// Execute runs a full AQL request — statements then an optional query —
// and returns the query result (nil Rows for statement-only requests).
func (c *Cluster) Execute(ctx context.Context, sess *Session, src string) (*Result, error) {
	if sess == nil {
		sess = NewSession()
	}
	t0 := time.Now()
	q, err := aqlp.Parse(src)
	if err != nil {
		return nil, err
	}
	parseNs := time.Since(t0).Nanoseconds()

	for _, stmt := range q.Stmts {
		if err := c.executeStmt(sess, stmt); err != nil {
			return nil, err
		}
	}
	if q.Body == nil {
		return &Result{Stats: QueryStats{ParseNs: parseNs}}, nil
	}
	return c.runQuery(ctx, sess, q.Body, parseNs)
}

func (c *Cluster) executeStmt(sess *Session, stmt aqlp.Stmt) error {
	switch s := stmt.(type) {
	case aqlp.UseStmt:
		if !c.Catalog.HasDataverse(s.Dataverse) {
			return fmt.Errorf("cluster: unknown dataverse %q", s.Dataverse)
		}
		sess.Dataverse = s.Dataverse
		return nil
	case aqlp.SetStmt:
		switch s.Key {
		case "simfunction":
			sess.SimFunction = s.Val
		case "simthreshold":
			sess.SimThreshold = s.Val
		default:
			return fmt.Errorf("cluster: unknown set property %q", s.Key)
		}
		return nil
	case aqlp.CreateDataverseStmt:
		return c.Catalog.CreateDataverse(s.Name)
	case aqlp.CreateDatasetStmt:
		_, err := c.Catalog.CreateDataset(sess.Dataverse, s.Name, s.PKField, s.AutoPK)
		return err
	case aqlp.CreateIndexStmt:
		ix := optimizer.IndexMeta{Name: s.Name, Field: s.Field, Type: s.IType, GramLen: s.GramLen}
		if s.IType != "btree" && s.IType != "keyword" && s.IType != "ngram" {
			return fmt.Errorf("cluster: unknown index type %q", s.IType)
		}
		if s.IType == "ngram" && s.GramLen < 1 {
			return fmt.Errorf("cluster: ngram index needs a gram length")
		}
		if err := c.Catalog.AddIndex(sess.Dataverse, s.Dataset, ix); err != nil {
			return err
		}
		// Build from existing data (bulk path).
		return c.BuildIndex(sess.Dataverse, s.Dataset, ix)
	case aqlp.CreateFunctionStmt:
		c.Catalog.SetFunc(s.Name, aqlp.FuncDef{Params: s.Params, Body: s.Body})
		return nil
	case aqlp.DropDatasetStmt:
		return c.DropDataset(sess.Dataverse, s.Name)
	}
	return fmt.Errorf("cluster: unsupported statement %T", stmt)
}

// Compile parses, translates, and optimizes a query without running it;
// used by plan-inspection tooling and the Figure 15 experiment.
func (c *Cluster) Compile(sess *Session, body aqlp.Node) (*algebra.Op, *QueryStats, error) {
	if sess == nil {
		sess = NewSession()
	}
	stats := &QueryStats{}
	alloc := &algebra.VarAlloc{}
	tr := &aqlp.Translator{
		Catalog:          c.Catalog,
		Alloc:            alloc,
		DefaultDataverse: sess.Dataverse,
		SimFunction:      sess.SimFunction,
		SimThreshold:     sess.SimThreshold,
		Funcs:            c.Catalog.Funcs(),
	}
	t0 := time.Now()
	plan, err := tr.TranslateQuery(body)
	if err != nil {
		return nil, nil, err
	}
	stats.TranslateNs = time.Since(t0).Nanoseconds()

	opts := optimizer.DefaultOptions()
	if sess.Opts != nil {
		opts = *sess.Opts
	}
	o := &optimizer.Optimizer{Catalog: c.Catalog, Alloc: alloc, Opts: opts, Trace: &stats.RuleTrace}
	t0 = time.Now()
	plan, err = o.Optimize(plan)
	if err != nil {
		return nil, nil, err
	}
	stats.OptimizeNs = time.Since(t0).Nanoseconds()
	stats.PlanOps = algebra.CountOps(plan)
	stats.LogicalPlan = algebra.Print(plan)
	return plan, stats, nil
}

func (c *Cluster) runQuery(ctx context.Context, sess *Session, body aqlp.Node, parseNs int64) (*Result, error) {
	plan, stats, err := c.Compile(sess, body)
	if err != nil {
		return nil, err
	}
	stats.ParseNs = parseNs

	counters := &QueryCounters{}
	t0 := time.Now()
	job, collector, err := c.GenerateJob(plan, counters)
	if err != nil {
		return nil, fmt.Errorf("%w\nplan:\n%s", err, stats.LogicalPlan)
	}
	stats.JobGenNs = time.Since(t0).Nanoseconds()

	topo := hyracks.Topology{Partitions: c.cfg.Partitions(), PartsPerNode: c.cfg.PartitionsPerNode}
	jstats, err := hyracks.Run(ctx, job, topo)
	if err != nil {
		return nil, err
	}
	stats.ExecNs = jstats.WallNs
	stats.MaxNodeBusyNs = jstats.MaxNodeBusyNs()
	stats.TotalBusyNs = jstats.TotalBusyNs()
	stats.MaxNodeTuples = jstats.MaxNodeTuples()
	stats.BytesShuffled = jstats.BytesShuffled
	stats.NetMessages = jstats.NetMessages
	stats.PhysicalOps = jstats.Ops
	stats.IndexSearches = counters.IndexSearches.Load()
	stats.CandidatesTotal = counters.CandidatesTotal.Load()
	stats.PostingsRead = counters.PostingsRead.Load()

	model := CostModel{NetBandwidthMBps: c.cfg.NetBandwidthMBps, NetLatencyUs: c.cfg.NetLatencyUs, Nodes: c.cfg.NumNodes}
	stats.EstimatedParallel = model.EstimateParallel(stats.MaxNodeTuples, stats.BytesShuffled, stats.NetMessages)

	rows := make([]adm.Value, len(collector.Tuples))
	for i, t := range collector.Tuples {
		rows[i] = t[0]
	}
	return &Result{Rows: rows, Stats: *stats}, nil
}

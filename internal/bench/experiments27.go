package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"simdb/internal/datagen"
	"simdb/internal/optimizer"
)

// Fig27 runs the scale-out and speed-up experiments on clusters of 1,
// 2, 4, and 8 simulated nodes. Scale-out grows the data with the node
// count (constant per-node share); speed-up fixes the data. Since one
// host cannot physically exhibit 8-node parallelism, the reported
// metric is the cost model's estimated parallel makespan (max per-node
// operator time plus modeled 1 GbE network time) — the substitution
// documented in DESIGN.md §3. Real wall time is shown alongside.
func (e *Env) Fig27() error {
	nodeCounts := []int{1, 2, 4, 8}
	fullScale := e.Scale

	type point struct {
		selNoIdx, selIdx, joinNoIdx, joinIdx time.Duration
	}
	runOn := func(nodes, records int) (point, error) {
		dir := filepath.Join(e.Dir, fmt.Sprintf("fig27-n%d-r%d", nodes, records))
		sub := NewEnv(dir)
		sub.Nodes = nodes
		sub.PartsPerNode = e.PartsPerNode
		sub.Scale = records
		sub.SelQueries = maxInt(3, e.SelQueries/4)
		sub.JoinQueries = maxInt(1, e.JoinQueries/2)
		sub.Out = io.Discard
		defer func() {
			sub.Close()
			os.RemoveAll(dir)
		}()
		if err := sub.EnsureDataset(datagen.Amazon); err != nil {
			return point{}, err
		}
		db, err := sub.DB()
		if err != nil {
			return point{}, err
		}
		noIdx := sessionWith(func(o *optimizer.Options) { o.UseIndexes = false })
		var p point
		m, err := sub.average(noIdx, sub.SelQueries, func() (string, error) {
			return sub.selQuery(datagen.Amazon, "jaccard", "0.8")
		})
		if err != nil {
			return point{}, err
		}
		p.selNoIdx = m.Estimate
		m, err = sub.average(noIdx, sub.JoinQueries, func() (string, error) {
			return sub.joinQuery(datagen.Amazon, "jaccard", "0.8", 10), nil
		})
		if err != nil {
			return point{}, err
		}
		p.joinNoIdx = m.Estimate
		if _, err := db.Query(`create index f27_kw on AmazonReview(summary) type keyword;`); err != nil {
			return point{}, err
		}
		withIdx := sessionWith(nil)
		m, err = sub.average(withIdx, sub.SelQueries, func() (string, error) {
			return sub.selQuery(datagen.Amazon, "jaccard", "0.8")
		})
		if err != nil {
			return point{}, err
		}
		p.selIdx = m.Estimate
		m, err = sub.average(withIdx, sub.JoinQueries, func() (string, error) {
			return sub.joinQuery(datagen.Amazon, "jaccard", "0.8", 10), nil
		})
		if err != nil {
			return point{}, err
		}
		p.joinIdx = m.Estimate
		return p, nil
	}

	e.logf("\n=== Figure 27(a): scale-out (data grows with nodes; estimated parallel ms) ===\n")
	e.logf("%-7s %16s %16s %16s %16s\n", "Nodes", "Jac-Join-NoIdx", "Jac-Sel-NoIdx", "Jac-Join-Idx", "Jac-Sel-Idx")
	for _, nodes := range nodeCounts {
		records := fullScale * nodes / 8 // each node holds fullScale/8 records
		if records < 1000 {
			records = 1000 * nodes
		}
		p, err := runOn(nodes, records)
		if err != nil {
			return err
		}
		e.logf("%-7d %16s %16s %16s %16s\n", nodes, ms(p.joinNoIdx), ms(p.selNoIdx), ms(p.joinIdx), ms(p.selIdx))
	}

	e.logf("\n=== Figure 27(b,c): speed-up (fixed data; estimated parallel ms and ratio vs 1 node) ===\n")
	e.logf("%-7s %16s %16s %16s %16s %28s\n", "Nodes", "Jac-Join-NoIdx", "Jac-Sel-NoIdx", "Jac-Join-Idx", "Jac-Sel-Idx", "Speedup(join-noidx, sel-idx)")
	var base point
	for i, nodes := range nodeCounts {
		p, err := runOn(nodes, fullScale)
		if err != nil {
			return err
		}
		if i == 0 {
			base = p
		}
		spJoin := float64(base.joinNoIdx) / float64(maxDur(p.joinNoIdx, 1))
		spSel := float64(base.selIdx) / float64(maxDur(p.selIdx, 1))
		e.logf("%-7d %16s %16s %16s %16s %17.2fx / %.2fx\n",
			nodes, ms(p.joinNoIdx), ms(p.selNoIdx), ms(p.joinIdx), ms(p.selIdx), spJoin, spSel)
	}
	return nil
}

func maxDur(d time.Duration, min time.Duration) time.Duration {
	if d < min {
		return min
	}
	return d
}

// Ablations measures the design choices DESIGN.md calls out: the
// surrogate INLJ, subplan reuse in the three-stage join, the
// T-occurrence algorithm, and hash vs sort-based grouping.
func (e *Env) Ablations() error {
	if err := e.EnsureDataset(datagen.Amazon); err != nil {
		return err
	}
	db, err := e.DB()
	if err != nil {
		return err
	}
	if _, err := db.Query(`create index abl_kw on AmazonReview(summary) type keyword;`); err != nil {
		_ = err // tolerated in "all" runs where it already exists
	}

	e.logf("\n=== Ablation: surrogate index-nested-loop join (paper §5.4.1) ===\n")
	e.logf("%-12s %14s %18s\n", "Variant", "Time(ms)", "BytesShuffled")
	for _, v := range []struct {
		name string
		on   bool
	}{{"surrogate", true}, {"full-record", false}} {
		sess := sessionWith(func(o *optimizer.Options) { o.SurrogateINLJ = v.on })
		var bytes int64
		m, err := e.average(sess, e.JoinQueries, func() (string, error) {
			return e.joinQuery(datagen.Amazon, "jaccard", "0.8", 400), nil
		})
		if err != nil {
			return err
		}
		// Re-run once to capture bytes (average drops per-run stats).
		one, err := e.runTimed(sess, e.joinQuery(datagen.Amazon, "jaccard", "0.8", 400))
		if err != nil {
			return err
		}
		bytes = one.Stats.BytesShuffled
		e.logf("%-12s %14s %18d\n", v.name, ms(m.Wall), bytes)
	}

	e.logf("\n=== Ablation: materialize/reuse shared subplans (paper §5.4.2) ===\n")
	e.logf("%-12s %14s\n", "Variant", "Time(ms)")
	for _, v := range []struct {
		name string
		on   bool
	}{{"reuse", true}, {"rescan", false}} {
		sess := sessionWith(func(o *optimizer.Options) {
			o.UseIndexes = false
			o.ReuseSubplans = v.on
		})
		m, err := e.average(sess, e.JoinQueries, func() (string, error) {
			return e.joinQuery(datagen.Amazon, "jaccard", "0.8", 200), nil
		})
		if err != nil {
			return err
		}
		e.logf("%-12s %14s\n", v.name, ms(m.Wall))
	}

	e.logf("\n=== Ablation: T-occurrence algorithm (Li et al. 2008) ===\n")
	e.logf("%-12s %14s %14s\n", "Algorithm", "T=0.2(ms)", "T=0.8(ms)")
	for _, algo := range []string{"scancount", "mergeskip", "divideskip"} {
		if err := db.SetTOccurrence(algo); err != nil {
			return err
		}
		sess := sessionWith(nil)
		lo, err := e.average(sess, e.SelQueries, func() (string, error) {
			return e.selQuery(datagen.Amazon, "jaccard", "0.2")
		})
		if err != nil {
			return err
		}
		hi, err := e.average(sess, e.SelQueries, func() (string, error) {
			return e.selQuery(datagen.Amazon, "jaccard", "0.8")
		})
		if err != nil {
			return err
		}
		e.logf("%-12s %14s %14s\n", algo, ms(lo.Wall), ms(hi.Wall))
	}
	if err := db.SetTOccurrence("scancount"); err != nil {
		return err
	}

	e.logf("\n=== Ablation: hash vs sort-based group-by (stage-1 token counting) ===\n")
	e.logf("%-12s %14s\n", "Grouping", "Time(ms)")
	for _, v := range []struct{ name, hint string }{
		{"hash", "/*+ hash */ "},
		{"sort", ""},
	} {
		q := fmt.Sprintf(`
			count(for $t in dataset AmazonReview
			for $tok in word-tokens($t.summary)
			%sgroup by $g := $tok with $t
			return count($t))`, v.hint)
		sess := sessionWith(nil)
		m, err := e.average(sess, 3, func() (string, error) { return q, nil })
		if err != nil {
			return err
		}
		e.logf("%-12s %14s\n", v.name, ms(m.Wall))
	}
	return nil
}

package aqlp

import (
	"fmt"
	"strconv"

	"simdb/internal/adm"
	"simdb/internal/algebra"
)

// Catalog resolves dataset metadata during translation.
type Catalog interface {
	// ResolveDataset returns the primary-key field of a dataset.
	ResolveDataset(dataverse, name string) (pkField string, ok bool)
}

// FuncDef is a stored AQL UDF; bodies are inlined (beta-reduced) at
// call sites during translation, which is how AsterixDB's AQL functions
// behave for our purposes.
type FuncDef struct {
	Params []string
	Body   Node
}

// MetaBinding binds an AQL+ ##meta clause to a subplan. RecVar is the
// variable a "for $v in ##X" clause binds.
type MetaBinding struct {
	Plan   *algebra.Op
	RecVar algebra.Var
}

// Translator turns ASTs into algebra plans.
type Translator struct {
	Catalog          Catalog
	Alloc            *algebra.VarAlloc
	DefaultDataverse string
	SimFunction      string // "jaccard" (default) or "edit-distance"
	SimThreshold     string
	Funcs            map[string]FuncDef
	// AQL+ environment, set by the optimizer during template expansion.
	Meta     map[string]MetaBinding
	MetaVars map[string]algebra.Var
}

// simSettings returns the effective similarity function and threshold
// for the ~= operator.
func (tr *Translator) simSettings() (string, string) {
	fn := tr.SimFunction
	if fn == "" {
		fn = "jaccard"
	}
	th := tr.SimThreshold
	if th == "" {
		if fn == "jaccard" {
			th = "0.5"
		} else {
			th = "1"
		}
	}
	return fn, th
}

// TranslateQuery translates a query body into a full plan rooted at a
// distribute-result (Write) operator and returns it.
func (tr *Translator) TranslateQuery(body Node) (*algebra.Op, error) {
	op, retVar, err := tr.translateBranch(body)
	if err != nil {
		return nil, err
	}
	w := algebra.NewOp(algebra.OpWrite, op)
	w.Var = retVar
	return w, nil
}

// TranslateFragment translates a FLWOR without a return clause and
// yields the final operator — the AQL+ path, run with Meta/MetaVars
// bound (paper Figure 16's "AQL+ Parser and Translator" box).
func (tr *Translator) TranslateFragment(fl FLWORNode) (*algebra.Op, error) {
	if fl.Ret != nil {
		return nil, fmt.Errorf("aql+: fragment must not have a return clause")
	}
	c := tr.newCtx()
	for _, cl := range fl.Clauses {
		if err := c.applyClause(cl); err != nil {
			return nil, err
		}
	}
	return c.cur, nil
}

// TranslateBranch translates a self-contained expression (FLWOR or
// scalar) into a plan producing one column; the AQL+ rules use it to
// build registered subplans such as the shared global token order.
func (tr *Translator) TranslateBranch(body Node) (*algebra.Op, algebra.Var, error) {
	return tr.translateBranch(body)
}

// translateBranch translates a self-contained expression (FLWOR or
// scalar) into a plan producing one column.
func (tr *Translator) translateBranch(body Node) (*algebra.Op, algebra.Var, error) {
	c := tr.newCtx()
	if fl, ok := body.(FLWORNode); ok {
		if fl.Ret == nil {
			return nil, 0, fmt.Errorf("aql: query body FLWOR needs a return clause")
		}
		for _, cl := range fl.Clauses {
			if err := c.applyClause(cl); err != nil {
				return nil, 0, err
			}
		}
		e, err := c.translateExpr(fl.Ret)
		if err != nil {
			return nil, 0, err
		}
		v := tr.Alloc.New()
		asg := algebra.NewOp(algebra.OpAssign, c.cur)
		asg.AssignVars = []algebra.Var{v}
		asg.AssignExprs = []algebra.Expr{e}
		return asg, v, nil
	}
	e, err := c.translateExpr(body)
	if err != nil {
		return nil, 0, err
	}
	v := tr.Alloc.New()
	asg := algebra.NewOp(algebra.OpAssign, c.cur)
	asg.AssignVars = []algebra.Var{v}
	asg.AssignExprs = []algebra.Expr{e}
	return asg, v, nil
}

// tctx is the translation state for one FLWOR pipeline.
type tctx struct {
	tr    *Translator
	cur   *algebra.Op
	scope map[string]algebra.Var
	// compNames are names bound by an enclosing comprehension; they
	// shadow plan variables.
	compNames map[string]bool
	depth     int // UDF inlining depth guard
}

func (tr *Translator) newCtx() *tctx {
	return &tctx{tr: tr, cur: algebra.NewOp(algebra.OpEmpty), scope: map[string]algebra.Var{}}
}

func (c *tctx) bind(name string, v algebra.Var) { c.scope[name] = v }

// joinIn crosses a branch into the current pipeline.
func (c *tctx) joinIn(branch *algebra.Op) {
	if c.cur.Kind == algebra.OpEmpty {
		c.cur = branch
		return
	}
	j := algebra.NewOp(algebra.OpJoin, c.cur, branch)
	j.Cond = algebra.C(adm.NewBool(true))
	c.cur = j
}

func (c *tctx) applyClause(cl Clause) error {
	switch x := cl.(type) {
	case ForClause:
		return c.applyFor(x)
	case JoinClause:
		return c.applyJoin(x)
	case LetClause:
		e, err := c.translateExpr(x.E)
		if err != nil {
			return err
		}
		v := c.tr.Alloc.New()
		asg := algebra.NewOp(algebra.OpAssign, c.cur)
		asg.AssignVars = []algebra.Var{v}
		asg.AssignExprs = []algebra.Expr{e}
		c.cur = asg
		c.bind(x.V, v)
		return nil
	case WhereClause:
		e, err := c.translateExpr(x.E)
		if err != nil {
			return err
		}
		sel := algebra.NewOp(algebra.OpSelect, c.cur)
		sel.Cond = e
		c.cur = sel
		return nil
	case GroupClause:
		return c.applyGroup(x)
	case OrderClause:
		ord := algebra.NewOp(algebra.OpOrder, c.cur)
		for _, item := range x.Items {
			e, err := c.translateExpr(item.E)
			if err != nil {
				return err
			}
			ord.Orders = append(ord.Orders, algebra.OrderSpec{E: e, Desc: item.Desc})
		}
		c.cur = ord
		return nil
	case LimitClause:
		lit, ok := x.E.(LitNode)
		if !ok || lit.Val.Kind() != adm.KindInt {
			return fmt.Errorf("aql: limit must be an integer literal")
		}
		lim := algebra.NewOp(algebra.OpLimit, c.cur)
		lim.Count = lit.Val.Int()
		c.cur = lim
		return nil
	}
	return fmt.Errorf("aql: unsupported clause %T", cl)
}

func (c *tctx) applyFor(fc ForClause) error {
	switch in := fc.In.(type) {
	case DatasetNode:
		scan, err := c.tr.scanOf(in.Name)
		if err != nil {
			return err
		}
		if fc.Pos != "" {
			return fmt.Errorf("aql: positional variable over a dataset is unsupported")
		}
		c.joinIn(scan)
		c.bind(fc.V, scan.RecVar)
		return nil
	case MetaClauseNode:
		b, ok := c.tr.Meta[in.Name]
		if !ok {
			return fmt.Errorf("aql+: unknown meta clause ##%s", in.Name)
		}
		if fc.Pos != "" {
			return fmt.Errorf("aql+: positional variable over a meta clause is unsupported")
		}
		c.joinIn(b.Plan)
		c.bind(fc.V, b.RecVar)
		return nil
	case UnionNode:
		op, outVar, err := c.tr.translateUnion(in)
		if err != nil {
			return err
		}
		if fc.Pos != "" {
			return fmt.Errorf("aql+: positional variable over a union is unsupported")
		}
		c.joinIn(op)
		c.bind(fc.V, outVar)
		return nil
	case FLWORNode:
		if c.tr.isBranchable(in, c.scope) {
			bop, bret, err := c.tr.translateBranchFLWOR(in)
			if err != nil {
				return err
			}
			if fc.Pos != "" {
				rank := algebra.NewOp(algebra.OpRank, bop)
				rank.PosVar = c.tr.Alloc.New()
				bop = rank
				c.bind(fc.Pos, rank.PosVar)
			}
			c.joinIn(bop)
			c.bind(fc.V, bret)
			return nil
		}
	}
	// In-memory collection: unnest the expression's value.
	e, err := c.translateExpr(fc.In)
	if err != nil {
		return err
	}
	un := algebra.NewOp(algebra.OpUnnest, c.cur)
	un.UnnestVar = c.tr.Alloc.New()
	un.Expr = e
	if fc.Pos != "" {
		un.PosVar = c.tr.Alloc.New()
		c.bind(fc.Pos, un.PosVar)
	}
	c.cur = un
	c.bind(fc.V, un.UnnestVar)
	return nil
}

func (c *tctx) applyJoin(jc JoinClause) error {
	var branch *algebra.Op
	var recVar algebra.Var
	switch in := jc.In.(type) {
	case DatasetNode:
		scan, err := c.tr.scanOf(in.Name)
		if err != nil {
			return err
		}
		branch, recVar = scan, scan.RecVar
	case MetaClauseNode:
		b, ok := c.tr.Meta[in.Name]
		if !ok {
			return fmt.Errorf("aql+: unknown meta clause ##%s", in.Name)
		}
		branch, recVar = b.Plan, b.RecVar
	case FLWORNode:
		if !c.tr.isBranchable(in, c.scope) {
			return fmt.Errorf("aql+: join input must be an independent branch")
		}
		bop, bret, err := c.tr.translateBranchFLWOR(in)
		if err != nil {
			return err
		}
		branch, recVar = bop, bret
	default:
		return fmt.Errorf("aql+: join input must be a dataset, meta clause, or FLWOR")
	}
	c.bind(jc.V, recVar)
	cond, err := c.translateExpr(jc.On)
	if err != nil {
		return err
	}
	j := algebra.NewOp(algebra.OpJoin, c.cur, branch)
	j.Cond = cond
	c.cur = j
	return nil
}

func (c *tctx) applyGroup(gc GroupClause) error {
	g := algebra.NewOp(algebra.OpGroupBy, c.cur)
	g.HashHint = gc.Hint == "hash"
	newScope := map[string]algebra.Var{}
	for _, k := range gc.Keys {
		e, err := c.translateExpr(k.E)
		if err != nil {
			return err
		}
		v := c.tr.Alloc.New()
		g.Keys = append(g.Keys, algebra.KeyDef{V: v, E: e})
		newScope[k.V] = v
	}
	for _, w := range gc.With {
		src, ok := c.scope[w]
		if !ok {
			return fmt.Errorf("aql: group-by with unbound variable $%s", w)
		}
		v := c.tr.Alloc.New()
		g.Aggs = append(g.Aggs, algebra.AggDef{V: v, Kind: algebra.AggListify, E: algebra.V(src)})
		newScope[w] = v
	}
	c.cur = g
	c.scope = newScope
	return nil
}

// scanOf builds a dataset scan.
func (tr *Translator) scanOf(name string) (*algebra.Op, error) {
	dv := tr.DefaultDataverse
	if tr.Catalog == nil {
		return nil, fmt.Errorf("aql: no catalog to resolve dataset %q", name)
	}
	if _, ok := tr.Catalog.ResolveDataset(dv, name); !ok {
		return nil, fmt.Errorf("aql: unknown dataset %q in dataverse %q", name, dv)
	}
	scan := algebra.NewOp(algebra.OpScan)
	scan.Dataverse = dv
	scan.Dataset = name
	scan.PKVar = tr.Alloc.New()
	scan.RecVar = tr.Alloc.New()
	return scan, nil
}

// translateBranchFLWOR translates a closed FLWOR into its own pipeline.
func (tr *Translator) translateBranchFLWOR(fl FLWORNode) (*algebra.Op, algebra.Var, error) {
	return tr.translateBranch(fl)
}

func (tr *Translator) translateUnion(un UnionNode) (*algebra.Op, algebra.Var, error) {
	u := algebra.NewOp(algebra.OpUnion)
	out := tr.Alloc.New()
	u.OutVars = []algebra.Var{out}
	for _, b := range un.Branches {
		fl, ok := b.(FLWORNode)
		if !ok {
			return nil, 0, fmt.Errorf("aql+: union branches must be FLWOR expressions")
		}
		bop, bret, err := tr.translateBranchFLWOR(fl)
		if err != nil {
			return nil, 0, err
		}
		u.Inputs = append(u.Inputs, bop)
		u.InVars = append(u.InVars, []algebra.Var{bret})
	}
	return u, out, nil
}

// isBranchable reports whether a FLWOR can be translated as an
// independent plan branch: it reads a dataset (directly or via meta
// clauses) and references no variable bound in the surrounding scope.
func (tr *Translator) isBranchable(fl FLWORNode, scope map[string]algebra.Var) bool {
	if !hasDataset(fl) {
		return false
	}
	for name := range freeVars(fl) {
		if _, bound := scope[name]; bound {
			return false
		}
	}
	return true
}

// aggregateFns maps aggregate call names to algebra kinds for the
// count(FLWOR)-style direct aggregation path.
var aggregateFns = map[string]algebra.AggKind{
	"count": algebra.AggCount,
	"sum":   algebra.AggSum,
	"min":   algebra.AggMin,
	"max":   algebra.AggMax,
	"avg":   algebra.AggAvg,
}

// translateExpr translates an expression, lifting closed dataset
// subqueries into plan branches as needed.
func (c *tctx) translateExpr(n Node) (algebra.Expr, error) {
	switch x := n.(type) {
	case LitNode:
		return algebra.C(x.Val), nil
	case VarNode:
		if c.compNames != nil && c.compNames[x.Name] {
			return algebra.NameRef{Name: x.Name}, nil
		}
		if v, ok := c.scope[x.Name]; ok {
			return algebra.V(v), nil
		}
		return nil, fmt.Errorf("aql: unbound variable $%s", x.Name)
	case MetaVarNode:
		if v, ok := c.tr.MetaVars[x.Name]; ok {
			return algebra.V(v), nil
		}
		return nil, fmt.Errorf("aql+: unknown meta variable $$%s", x.Name)
	case FieldNode:
		base, err := c.translateExpr(x.Base)
		if err != nil {
			return nil, err
		}
		return algebra.F("field-access", base, algebra.CStr(x.Field)), nil
	case IndexNode:
		base, err := c.translateExpr(x.Base)
		if err != nil {
			return nil, err
		}
		idx, err := c.translateExpr(x.Idx)
		if err != nil {
			return nil, err
		}
		return algebra.F("index-access", base, idx), nil
	case HintNode:
		inner, err := c.translateExpr(x.X)
		if err != nil {
			return nil, err
		}
		return algebra.F("hinted", algebra.CStr(x.Hint), inner), nil
	case UnaryNode:
		inner, err := c.translateExpr(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			return algebra.F("neg", inner), nil
		case "not":
			return algebra.F("not", inner), nil
		}
		return nil, fmt.Errorf("aql: unknown unary operator %q", x.Op)
	case BinNode:
		return c.translateBin(x)
	case RecordNode:
		args := make([]algebra.Expr, 0, len(x.Keys)*2)
		for i := range x.Keys {
			v, err := c.translateExpr(x.Vals[i])
			if err != nil {
				return nil, err
			}
			args = append(args, algebra.CStr(x.Keys[i]), v)
		}
		return algebra.Call{Fn: "record", Args: args}, nil
	case ListNode:
		args := make([]algebra.Expr, len(x.Elems))
		for i, e := range x.Elems {
			v, err := c.translateExpr(e)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return algebra.Call{Fn: "list", Args: args}, nil
	case CallNode:
		return c.translateCall(x)
	case FLWORNode:
		if c.tr.isBranchable(x, c.scope) && c.compNames == nil {
			return c.liftBranch(x, algebra.AggListify)
		}
		return c.translateComprehension(x)
	case DatasetNode:
		return nil, fmt.Errorf("aql: dataset reference outside a for clause")
	case MetaClauseNode:
		return nil, fmt.Errorf("aql+: meta clause outside a for clause")
	case UnionNode:
		return nil, fmt.Errorf("aql+: union outside a for clause")
	}
	return nil, fmt.Errorf("aql: unsupported expression %T", n)
}

// liftBranch lifts a closed dataset FLWOR into a plan branch aggregated
// to a single value, cross-joined into the pipeline; the expression
// becomes a variable reference (Algebricks' subplan-to-join rewrite).
func (c *tctx) liftBranch(fl FLWORNode, kind algebra.AggKind) (algebra.Expr, error) {
	bop, bret, err := c.tr.translateBranchFLWOR(fl)
	if err != nil {
		return nil, err
	}
	agg := algebra.NewOp(algebra.OpAggregate, bop)
	out := c.tr.Alloc.New()
	agg.Aggs = []algebra.AggDef{{V: out, Kind: kind, E: algebra.V(bret)}}
	c.joinIn(agg)
	return algebra.V(out), nil
}

func (c *tctx) translateBin(x BinNode) (algebra.Expr, error) {
	if x.Op == "~=" {
		return c.translateSimOp(x)
	}
	l, err := c.translateExpr(x.L)
	if err != nil {
		return nil, err
	}
	r, err := c.translateExpr(x.R)
	if err != nil {
		return nil, err
	}
	fn, ok := map[string]string{
		"=": "eq", "!=": "neq", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
		"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
		"and": "and", "or": "or",
	}[x.Op]
	if !ok {
		return nil, fmt.Errorf("aql: unknown operator %q", x.Op)
	}
	return algebra.F(fn, l, r), nil
}

// translateSimOp expands the ~= similarity operator using the session's
// simfunction and simthreshold settings (paper Figure 4(a)).
func (c *tctx) translateSimOp(x BinNode) (algebra.Expr, error) {
	l, err := c.translateExpr(x.L)
	if err != nil {
		return nil, err
	}
	r, err := c.translateExpr(x.R)
	if err != nil {
		return nil, err
	}
	fn, th := c.tr.simSettings()
	switch fn {
	case "jaccard":
		d, err := strconv.ParseFloat(th, 64)
		if err != nil {
			return nil, fmt.Errorf("aql: bad simthreshold %q for jaccard", th)
		}
		return algebra.F("ge", algebra.F("similarity-jaccard", l, r), algebra.C(adm.NewDouble(d))), nil
	case "edit-distance":
		k, err := strconv.ParseInt(th, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("aql: bad simthreshold %q for edit-distance", th)
		}
		return algebra.F("le", algebra.F("edit-distance", l, r), algebra.C(adm.NewInt(k))), nil
	}
	return nil, fmt.Errorf("aql: unsupported simfunction %q", fn)
}

func (c *tctx) translateCall(x CallNode) (algebra.Expr, error) {
	// UDF inlining by AST substitution.
	if def, ok := c.tr.Funcs[x.Name]; ok {
		if c.depth > 32 {
			return nil, fmt.Errorf("aql: UDF %q expansion too deep (recursive?)", x.Name)
		}
		if len(x.Args) != len(def.Params) {
			return nil, fmt.Errorf("aql: %s expects %d arguments, got %d", x.Name, len(def.Params), len(x.Args))
		}
		subst := map[string]Node{}
		for i, p := range def.Params {
			subst[p] = x.Args[i]
		}
		inlined := substituteVars(def.Body, subst)
		c.depth++
		defer func() { c.depth-- }()
		return c.translateExpr(inlined)
	}
	// Aggregate over a closed dataset FLWOR compiles to a plan-level
	// Aggregate instead of listifying the whole result.
	if kind, isAgg := aggregateFns[x.Name]; isAgg && len(x.Args) == 1 && c.compNames == nil {
		if fl, ok := x.Args[0].(FLWORNode); ok && c.tr.isBranchable(fl, c.scope) {
			return c.liftBranch(fl, kind)
		}
	}
	if _, ok := algebra.LookupBuiltin(x.Name); !ok {
		return nil, fmt.Errorf("aql: unknown function %q", x.Name)
	}
	args := make([]algebra.Expr, len(x.Args))
	for i, a := range x.Args {
		v, err := c.translateExpr(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return algebra.Call{Fn: x.Name, Args: args}, nil
}

// translateComprehension compiles a FLWOR over in-memory collections
// into an algebra Comprehension expression evaluated per tuple.
func (c *tctx) translateComprehension(fl FLWORNode) (algebra.Expr, error) {
	if fl.Ret == nil {
		return nil, fmt.Errorf("aql: nested FLWOR needs a return clause")
	}
	if hasDataset(fl) {
		return nil, fmt.Errorf("aql: correlated subquery over a dataset is unsupported; restructure with joins")
	}
	sub := &tctx{tr: c.tr, cur: c.cur, scope: c.scope, depth: c.depth}
	sub.compNames = map[string]bool{}
	if c.compNames != nil {
		for k := range c.compNames {
			sub.compNames[k] = true
		}
	}
	var comp algebra.Comprehension
	for _, cl := range fl.Clauses {
		switch x := cl.(type) {
		case ForClause:
			e, err := sub.translateExpr(x.In)
			if err != nil {
				return nil, err
			}
			comp.Clauses = append(comp.Clauses, algebra.CompClause{Kind: "for", V: x.V, PosV: x.Pos, E: e})
			sub.compNames[x.V] = true
			if x.Pos != "" {
				sub.compNames[x.Pos] = true
			}
		case LetClause:
			e, err := sub.translateExpr(x.E)
			if err != nil {
				return nil, err
			}
			comp.Clauses = append(comp.Clauses, algebra.CompClause{Kind: "let", V: x.V, E: e})
			sub.compNames[x.V] = true
		case WhereClause:
			e, err := sub.translateExpr(x.E)
			if err != nil {
				return nil, err
			}
			comp.Clauses = append(comp.Clauses, algebra.CompClause{Kind: "where", E: e})
		case OrderClause:
			for _, item := range x.Items {
				e, err := sub.translateExpr(item.E)
				if err != nil {
					return nil, err
				}
				comp.Clauses = append(comp.Clauses, algebra.CompClause{Kind: "order", E: e, Desc: item.Desc})
			}
		default:
			return nil, fmt.Errorf("aql: clause %T unsupported inside a nested collection query", cl)
		}
	}
	ret, err := sub.translateExpr(fl.Ret)
	if err != nil {
		return nil, err
	}
	comp.Ret = ret
	return comp, nil
}

// hasDataset reports whether the AST reads a dataset, meta clause, or
// union (all plan-level sources).
func hasDataset(n Node) bool {
	found := false
	walkAST(n, func(m Node) {
		switch m.(type) {
		case DatasetNode, MetaClauseNode, UnionNode:
			found = true
		}
	})
	return found
}

// freeVars returns the $names referenced but not bound within n.
func freeVars(n Node) map[string]bool {
	free := map[string]bool{}
	var rec func(m Node, bound map[string]bool)
	recClauses := func(fl FLWORNode, bound map[string]bool) {
		inner := map[string]bool{}
		for k := range bound {
			inner[k] = true
		}
		for _, cl := range fl.Clauses {
			switch x := cl.(type) {
			case ForClause:
				rec(x.In, inner)
				inner[x.V] = true
				if x.Pos != "" {
					inner[x.Pos] = true
				}
			case JoinClause:
				rec(x.In, inner)
				inner[x.V] = true
				rec(x.On, inner)
			case LetClause:
				rec(x.E, inner)
				inner[x.V] = true
			case WhereClause:
				rec(x.E, inner)
			case GroupClause:
				for _, k := range x.Keys {
					rec(k.E, inner)
				}
				next := map[string]bool{}
				for k := range bound {
					next[k] = true
				}
				for _, k := range x.Keys {
					next[k.V] = true
				}
				for _, w := range x.With {
					if !inner[w] {
						free[w] = true
					}
					next[w] = true
				}
				inner = next
			case OrderClause:
				for _, item := range x.Items {
					rec(item.E, inner)
				}
			case LimitClause:
				rec(x.E, inner)
			}
		}
		if fl.Ret != nil {
			rec(fl.Ret, inner)
		}
	}
	rec = func(m Node, bound map[string]bool) {
		switch x := m.(type) {
		case VarNode:
			if !bound[x.Name] {
				free[x.Name] = true
			}
		case FieldNode:
			rec(x.Base, bound)
		case IndexNode:
			rec(x.Base, bound)
			rec(x.Idx, bound)
		case CallNode:
			for _, a := range x.Args {
				rec(a, bound)
			}
		case BinNode:
			rec(x.L, bound)
			rec(x.R, bound)
		case UnaryNode:
			rec(x.X, bound)
		case HintNode:
			rec(x.X, bound)
		case RecordNode:
			for _, v := range x.Vals {
				rec(v, bound)
			}
		case ListNode:
			for _, e := range x.Elems {
				rec(e, bound)
			}
		case UnionNode:
			for _, b := range x.Branches {
				rec(b, bound)
			}
		case FLWORNode:
			recClauses(x, bound)
		}
	}
	rec(n, map[string]bool{})
	return free
}

// walkAST visits every node.
func walkAST(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	switch x := n.(type) {
	case FieldNode:
		walkAST(x.Base, fn)
	case IndexNode:
		walkAST(x.Base, fn)
		walkAST(x.Idx, fn)
	case CallNode:
		for _, a := range x.Args {
			walkAST(a, fn)
		}
	case BinNode:
		walkAST(x.L, fn)
		walkAST(x.R, fn)
	case UnaryNode:
		walkAST(x.X, fn)
	case HintNode:
		walkAST(x.X, fn)
	case RecordNode:
		for _, v := range x.Vals {
			walkAST(v, fn)
		}
	case ListNode:
		for _, e := range x.Elems {
			walkAST(e, fn)
		}
	case UnionNode:
		for _, b := range x.Branches {
			walkAST(b, fn)
		}
	case FLWORNode:
		for _, cl := range x.Clauses {
			switch y := cl.(type) {
			case ForClause:
				walkAST(y.In, fn)
			case JoinClause:
				walkAST(y.In, fn)
				walkAST(y.On, fn)
			case LetClause:
				walkAST(y.E, fn)
			case WhereClause:
				walkAST(y.E, fn)
			case GroupClause:
				for _, k := range y.Keys {
					walkAST(k.E, fn)
				}
			case OrderClause:
				for _, item := range y.Items {
					walkAST(item.E, fn)
				}
			case LimitClause:
				walkAST(y.E, fn)
			}
		}
		if x.Ret != nil {
			walkAST(x.Ret, fn)
		}
	}
}

// substituteVars beta-reduces $name references through the mapping.
// Bindings inside nested FLWORs shadow substitutions.
func substituteVars(n Node, subst map[string]Node) Node {
	if len(subst) == 0 {
		return n
	}
	switch x := n.(type) {
	case VarNode:
		if r, ok := subst[x.Name]; ok {
			return r
		}
		return x
	case FieldNode:
		return FieldNode{Base: substituteVars(x.Base, subst), Field: x.Field}
	case IndexNode:
		return IndexNode{Base: substituteVars(x.Base, subst), Idx: substituteVars(x.Idx, subst)}
	case CallNode:
		args := make([]Node, len(x.Args))
		for i, a := range x.Args {
			args[i] = substituteVars(a, subst)
		}
		return CallNode{Name: x.Name, Args: args}
	case BinNode:
		return BinNode{Op: x.Op, L: substituteVars(x.L, subst), R: substituteVars(x.R, subst)}
	case UnaryNode:
		return UnaryNode{Op: x.Op, X: substituteVars(x.X, subst)}
	case HintNode:
		return HintNode{Hint: x.Hint, X: substituteVars(x.X, subst)}
	case RecordNode:
		vals := make([]Node, len(x.Vals))
		for i, v := range x.Vals {
			vals[i] = substituteVars(v, subst)
		}
		return RecordNode{Keys: x.Keys, Vals: vals}
	case ListNode:
		elems := make([]Node, len(x.Elems))
		for i, e := range x.Elems {
			elems[i] = substituteVars(e, subst)
		}
		return ListNode{Elems: elems}
	case UnionNode:
		branches := make([]Node, len(x.Branches))
		for i, b := range x.Branches {
			branches[i] = substituteVars(b, subst)
		}
		return UnionNode{Branches: branches}
	case FLWORNode:
		// Narrow the substitution as clause bindings shadow names.
		cur := map[string]Node{}
		for k, v := range subst {
			cur[k] = v
		}
		out := FLWORNode{}
		for _, cl := range x.Clauses {
			switch y := cl.(type) {
			case ForClause:
				nc := ForClause{V: y.V, Pos: y.Pos, In: substituteVars(y.In, cur)}
				delete(cur, y.V)
				if y.Pos != "" {
					delete(cur, y.Pos)
				}
				out.Clauses = append(out.Clauses, nc)
			case JoinClause:
				nc := JoinClause{V: y.V, In: substituteVars(y.In, cur)}
				delete(cur, y.V)
				nc.On = substituteVars(y.On, cur)
				out.Clauses = append(out.Clauses, nc)
			case LetClause:
				nc := LetClause{V: y.V, E: substituteVars(y.E, cur)}
				delete(cur, y.V)
				out.Clauses = append(out.Clauses, nc)
			case WhereClause:
				out.Clauses = append(out.Clauses, WhereClause{E: substituteVars(y.E, cur)})
			case GroupClause:
				ng := GroupClause{Hint: y.Hint, With: y.With}
				for _, k := range y.Keys {
					ng.Keys = append(ng.Keys, GroupKey{V: k.V, E: substituteVars(k.E, cur)})
					delete(cur, k.V)
				}
				out.Clauses = append(out.Clauses, ng)
			case OrderClause:
				no := OrderClause{}
				for _, item := range y.Items {
					no.Items = append(no.Items, OrderItem{E: substituteVars(item.E, cur), Desc: item.Desc})
				}
				out.Clauses = append(out.Clauses, no)
			case LimitClause:
				out.Clauses = append(out.Clauses, LimitClause{E: substituteVars(y.E, cur)})
			}
		}
		if x.Ret != nil {
			out.Ret = substituteVars(x.Ret, cur)
		}
		return out
	}
	return n
}

package cluster

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestQueryIDStamping(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	sess := NewSession()
	loadReviews(t, c, sess)

	r1 := exec(t, c, sess, `for $r in dataset Reviews return $r.id`)
	r2 := exec(t, c, sess, `for $r in dataset Reviews return $r.id`)
	if r1.Stats.QueryID == 0 || r2.Stats.QueryID == 0 {
		t.Fatalf("query IDs not assigned: %d, %d", r1.Stats.QueryID, r2.Stats.QueryID)
	}
	if r2.Stats.QueryID <= r1.Stats.QueryID {
		t.Fatalf("query IDs not increasing: %d then %d", r1.Stats.QueryID, r2.Stats.QueryID)
	}

	// Profiles carry the same ID.
	rp := exec(t, c, sess, `set profile 'on'; for $r in dataset Reviews return $r.id`)
	if rp.Profile == nil {
		t.Fatal("no profile")
	}
	if rp.Profile.QueryID != rp.Stats.QueryID {
		t.Fatalf("profile id %d != stats id %d", rp.Profile.QueryID, rp.Stats.QueryID)
	}

	// Errors carry the ID in a typed payload.
	_, err := c.Execute(context.Background(), sess, `for $r in dataset Nope return $r`)
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("error is %T, want *QueryError", err)
	}
	if qe.QueryID <= rp.Stats.QueryID {
		t.Fatalf("error query id %d not after %d", qe.QueryID, rp.Stats.QueryID)
	}
	if !strings.Contains(err.Error(), "unknown dataset") {
		t.Fatalf("wrapped error lost its message: %v", err)
	}
}

func TestQueryTrace(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	sess := NewSession()
	loadReviews(t, c, sess)

	res := exec(t, c, sess, `for $r in dataset Reviews return $r.id`)
	tr, ok := c.Tracer().Get(res.Stats.QueryID)
	if !ok {
		t.Fatalf("no trace for query %d", res.Stats.QueryID)
	}
	if !tr.Done() || tr.Err() != "" {
		t.Fatalf("trace done=%v err=%q", tr.Done(), tr.Err())
	}
	names := map[string]int{}
	for _, s := range tr.Spans() {
		names[s.Name]++
	}
	for _, want := range []string{"admission", "plan-cache", "parse", "compile", "jobgen", "execute"} {
		if names[want] == 0 {
			t.Fatalf("trace missing %q span; have %v", want, names)
		}
	}
	// Operator spans hang under the execute phase.
	var opSpans int
	for _, s := range tr.Spans() {
		if s.Cat == "operator" {
			opSpans++
		}
	}
	if opSpans == 0 {
		t.Fatal("no operator spans recorded")
	}
	if buf, err := tr.ChromeJSON(c.Tracer()); err != nil || len(buf) == 0 {
		t.Fatalf("ChromeJSON: %v", err)
	}

	// Warm run: the plan-cache span reports a hit and compile is skipped.
	res2 := exec(t, c, sess, `for $r in dataset Reviews return $r.id`)
	if !res2.Stats.PlanCacheHit {
		t.Fatal("second run should hit the plan cache")
	}
	tr2, _ := c.Tracer().Get(res2.Stats.QueryID)
	var sawHit bool
	for _, s := range tr2.Spans() {
		if s.Name == "compile" {
			t.Fatal("warm trace has a compile span")
		}
		if s.Name == "plan-cache" {
			for _, a := range s.Args {
				if a.Key == "outcome" && a.Str == "hit" {
					sawHit = true
				}
			}
		}
	}
	if !sawHit {
		t.Fatal("warm trace's plan-cache span not marked hit")
	}
}

func TestExplain(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	sess := NewSession()
	loadReviews(t, c, sess)

	// Bare explain: plan text only, nothing executed.
	res := exec(t, c, sess, `explain for $r in dataset Reviews return $r.id`)
	if len(res.Rows) == 0 {
		t.Fatal("explain returned no rows")
	}
	if res.Stats.ExecNs != 0 {
		t.Fatal("bare explain executed the query")
	}
	var all []string
	for _, row := range res.Rows {
		all = append(all, row.Str())
	}
	plan := strings.Join(all, "\n")
	if !strings.Contains(plan, "data-scan") {
		t.Fatalf("explain output does not look like a plan:\n%s", plan)
	}

	// explain analyze: runs and annotates.
	res = exec(t, c, sess, `explain analyze for $r in dataset Reviews return $r.id`)
	report := rowsText(res)
	for _, want := range []string{"explain analyze (query ", "compile:", "logical plan:", "operator"} {
		if !strings.Contains(report, want) {
			t.Fatalf("explain analyze report missing %q:\n%s", want, report)
		}
	}
	if res.Stats.ExecNs == 0 {
		t.Fatal("explain analyze did not execute")
	}

	// Errors: explain without a body.
	mustErr(t, c, sess, `explain`)
}

func rowsText(res *Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		b.WriteString(row.Str())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestExplainBypassesPlanCache proves an explain request neither reads
// nor populates the cache entry of the equivalent bare query.
func TestExplainBypassesPlanCache(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	sess := NewSession()
	loadReviews(t, c, sess)

	exec(t, c, sess, `for $r in dataset Reviews return $r.id`) // cache the bare plan
	res := exec(t, c, sess, `explain analyze for $r in dataset Reviews return $r.id`)
	if res.Stats.PlanCacheHit {
		t.Fatal("explain analyze hit the plan cache")
	}
	res2 := exec(t, c, sess, `explain analyze for $r in dataset Reviews return $r.id`)
	if res2.Stats.PlanCacheHit {
		t.Fatal("repeated explain analyze hit the plan cache")
	}
}

func TestActiveQueriesAndCancel(t *testing.T) {
	c, err := New(Config{NumNodes: 1, PartitionsPerNode: 1, DataDir: t.TempDir(), MaxConcurrentQueries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute(context.Background(), NewSession(), `create dataset D primary key id;`); err != nil {
		t.Fatal(err)
	}

	// Occupy the single admission slot directly so the next query is
	// held deterministically in the admission phase.
	_, release, _, err := c.qm.admit(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.Execute(context.Background(), NewSession(), `for $x in dataset D return $x`)
		errCh <- err
	}()

	// The queued query must appear in ActiveQueries in the admission
	// phase, carrying its normalized text.
	var waiter ActiveQueryInfo
	deadline := time.After(5 * time.Second)
	for waiter.ID == 0 {
		select {
		case <-deadline:
			t.Fatal("queued query never appeared in ActiveQueries")
		default:
			time.Sleep(time.Millisecond)
		}
		for _, aq := range c.ActiveQueries() {
			if aq.Phase == "admission" {
				waiter = aq
			}
		}
	}
	if !strings.Contains(waiter.Query, "dataset D") {
		t.Fatalf("active query text = %q", waiter.Query)
	}
	if waiter.ElapsedNs <= 0 {
		t.Fatalf("active query elapsed = %d", waiter.ElapsedNs)
	}

	if !c.CancelQuery(waiter.ID) {
		t.Fatal("CancelQuery reported no such query")
	}
	err = <-errCh
	wg.Wait()
	if err == nil {
		t.Fatal("canceled query returned no error")
	}
	var qe *QueryError
	if !errors.As(err, &qe) || qe.QueryID != waiter.ID {
		t.Fatalf("canceled query error = %v", err)
	}
	if err := release(nil); err != nil {
		t.Fatal(err)
	}

	if c.CancelQuery(waiter.ID) {
		t.Fatal("CancelQuery found a finished query")
	}
	if len(c.ActiveQueries()) != 0 {
		t.Fatalf("queries still active: %+v", c.ActiveQueries())
	}
}

func TestSlowQueryRing(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	sess := NewSession()
	loadReviews(t, c, sess)
	c.SetSlowQueryLogOutput(nopWriter{})
	c.SetSlowQueryThreshold(time.Nanosecond) // everything is slow

	res := exec(t, c, sess, `for $r in dataset Reviews return $r.id`)
	recs := c.SlowQueries()
	if len(recs) == 0 {
		t.Fatal("no slow-query records retained")
	}
	if recs[0].QueryID != res.Stats.QueryID {
		t.Fatalf("ring head id %d, want %d", recs[0].QueryID, res.Stats.QueryID)
	}
	if recs[0].Query == "" || recs[0].WallNs <= 0 {
		t.Fatalf("ring record incomplete: %+v", recs[0])
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

package cluster

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"

	"simdb/internal/algebra"
	"simdb/internal/optimizer"
)

// PlanCache caches compiled (translated + optimized) query plans so a
// repeated similarity query skips the whole parse/translate/optimize
// pipeline — the ~900 ms per-query AQL+ compile overhead the paper's
// §6.4.1 measures and amortizes across a workload.
//
// Entries are keyed by the normalized AQL request text plus everything
// else that feeds compilation: the session's dataverse, simfunction,
// and simthreshold at request entry, and the optimizer options. Each
// entry records the catalog epoch it was compiled under; any DDL bumps
// the epoch, so a hit is served only when no catalog change happened
// since compilation — a cached plan can never be stale with respect to
// a new index, a dropped dataset, or a redefined UDF.
//
// Hits return a deep copy of the plan through algebra.Copy (the AQL+
// remapping machinery), so concurrent executions never share mutable
// plan state. Only requests whose statements are all session-scoped
// (use/set) are cacheable; requests containing DDL or other statements
// bypass the cache entirely.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[planKey]*list.Element
	lru      *list.List // front = most recently used
	disabled atomic.Bool

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
	evictions     atomic.Int64
}

// planKey identifies one compilable request. All fields participate in
// equality.
type planKey struct {
	text         string // normalized AQL request text
	dataverse    string
	simFunction  string
	simThreshold string
	profile      bool // profiled runs key separately (span collection differs)
	opts         optimizer.Options
}

// planEntry is one cached compilation result.
type planEntry struct {
	key   planKey
	plan  *algebra.Op
	epoch uint64
	// post is the session state after the request's use/set statements
	// ran; applied on a hit so the cache is transparent to session flow.
	post        sessionState
	planOps     int
	logicalPlan string
	ruleTrace   []string
	cornerCases int
	// hits counts how many times this entry served a query; the
	// specialization pass promotes a plan to a compiled build once its
	// base entry crosses Config.SpecializeAfterHits.
	hits atomic.Int64
}

// NewPlanCache returns a cache bounded to capacity entries (LRU
// eviction). A capacity <= 0 falls back to the default of 256.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &PlanCache{
		capacity: capacity,
		entries:  make(map[planKey]*list.Element),
		lru:      list.New(),
	}
}

// SetEnabled toggles the cache at run time (benchmark ablations). A
// disabled cache misses every lookup and drops every store.
func (pc *PlanCache) SetEnabled(on bool) { pc.disabled.Store(!on) }

// Enabled reports whether the cache serves hits.
func (pc *PlanCache) Enabled() bool { return !pc.disabled.Load() }

// get returns the cached entry for key if present and compiled under
// the current epoch. Stale entries are evicted on sight.
func (pc *PlanCache) get(key planKey, epoch uint64) (*planEntry, bool) {
	if pc.disabled.Load() {
		return nil, false
	}
	pc.mu.Lock()
	el, ok := pc.entries[key]
	if !ok {
		pc.mu.Unlock()
		pc.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*planEntry)
	if e.epoch != epoch {
		pc.lru.Remove(el)
		delete(pc.entries, key)
		pc.mu.Unlock()
		pc.invalidations.Add(1)
		pc.misses.Add(1)
		return nil, false
	}
	pc.lru.MoveToFront(el)
	pc.mu.Unlock()
	pc.hits.Add(1)
	return e, true
}

// peek is get without the miss accounting: an absent key costs nothing.
// The executor uses it to probe for a promoted (specialized) build of a
// plan before the base-key lookup — most queries have none, and that
// probe must not inflate the miss counter.
func (pc *PlanCache) peek(key planKey, epoch uint64) (*planEntry, bool) {
	if pc.disabled.Load() {
		return nil, false
	}
	pc.mu.Lock()
	el, ok := pc.entries[key]
	if !ok {
		pc.mu.Unlock()
		return nil, false
	}
	e := el.Value.(*planEntry)
	if e.epoch != epoch {
		pc.lru.Remove(el)
		delete(pc.entries, key)
		pc.mu.Unlock()
		pc.invalidations.Add(1)
		return nil, false
	}
	pc.lru.MoveToFront(el)
	pc.mu.Unlock()
	pc.hits.Add(1)
	return e, true
}

// put stores a freshly compiled plan, evicting the least recently used
// entry when over capacity.
func (pc *PlanCache) put(e *planEntry) {
	if pc.disabled.Load() {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[e.key]; ok {
		el.Value = e
		pc.lru.MoveToFront(el)
		return
	}
	pc.entries[e.key] = pc.lru.PushFront(e)
	for pc.lru.Len() > pc.capacity {
		oldest := pc.lru.Back()
		pc.lru.Remove(oldest)
		delete(pc.entries, oldest.Value.(*planEntry).key)
		pc.evictions.Add(1)
	}
}

// Clear drops every entry.
func (pc *PlanCache) Clear() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.entries = make(map[planKey]*list.Element)
	pc.lru.Init()
}

// PlanCacheStats is a point-in-time snapshot of cache counters.
type PlanCacheStats struct {
	Hits          int64
	Misses        int64
	Invalidations int64
	Evictions     int64
	Entries       int
}

// Stats returns the current counters.
func (pc *PlanCache) Stats() PlanCacheStats {
	pc.mu.Lock()
	n := pc.lru.Len()
	pc.mu.Unlock()
	return PlanCacheStats{
		Hits:          pc.hits.Load(),
		Misses:        pc.misses.Load(),
		Invalidations: pc.invalidations.Load(),
		Evictions:     pc.evictions.Load(),
		Entries:       n,
	}
}

// normalizeAQL canonicalizes a request's text for cache keying:
// whitespace runs outside string literals collapse to a single space
// and surrounding whitespace is trimmed. Quoted strings are preserved
// byte-for-byte — two queries differing only inside a literal must
// never collide on the same key.
func normalizeAQL(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	var quote byte // active string delimiter, 0 outside literals
	pendingSpace := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		if quote != 0 {
			b.WriteByte(c)
			if c == '\\' && i+1 < len(src) {
				i++
				b.WriteByte(src[i])
				continue
			}
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			pendingSpace = b.Len() > 0
			continue
		case '\'', '"':
			quote = c
		}
		if pendingSpace {
			b.WriteByte(' ')
			pendingSpace = false
		}
		b.WriteByte(c)
	}
	return b.String()
}

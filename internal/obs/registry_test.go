package obs

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

func TestBucketMonotonicAndConsistent(t *testing.T) {
	vals := []int64{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1000, 1 << 20, 1 << 40, 1 << 62, math.MaxInt64}
	prev := -1
	for _, v := range vals {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotonic at %d: %d < %d", v, b, prev)
		}
		prev = b
		if u := bucketUpper(b); u < v {
			t.Fatalf("bucketUpper(%d)=%d < value %d", b, u, v)
		}
	}
	// Every value must land inside its bucket: upper(b-1) < v <= upper(b).
	for v := int64(0); v < 100000; v += 7 {
		b := bucketOf(v)
		if bucketUpper(b) < v {
			t.Fatalf("value %d above its bucket upper %d", v, bucketUpper(b))
		}
		if b > 0 && bucketUpper(b-1) >= v {
			t.Fatalf("value %d should be in bucket %d, fits in %d", v, b, b-1)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	// Uniform 1..1000: p50 ~ 500, p95 ~ 950, p99 ~ 990 within the
	// documented 12.5% relative bucket error.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	check := func(p float64, exact int64) {
		got := h.Quantile(p)
		if got < exact || float64(got) > float64(exact)*1.125+1 {
			t.Errorf("Quantile(%v) = %d, want in [%d, %.0f]", p, got, exact, float64(exact)*1.125+1)
		}
	}
	check(0.50, 500)
	check(0.95, 950)
	check(0.99, 990)
	if got := h.Quantile(1.0); got != 1000 {
		t.Errorf("Quantile(1.0) = %d, want 1000 (observed max cap)", got)
	}
	if got := h.Quantile(0); got < 1 {
		t.Errorf("Quantile(0) = %d, want >= 1", got)
	}
	s := h.Snapshot()
	if s.Min != 1 || s.Max != 1000 || s.Sum != 500500 {
		t.Errorf("snapshot min/max/sum = %d/%d/%d, want 1/1000/500500", s.Min, s.Max, s.Sum)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := newHistogram()
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	h.Observe(-5)
	if s := h.Snapshot(); s.Count != 1 || s.Min != 0 || s.Max != 0 {
		t.Errorf("negative observation should clamp to 0, got %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(seed*1000 + i)
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestRegistrySnapshotDeterminism(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("z.queries").Add(7)
		r.Counter("a.flushes").Inc()
		r.Gauge("mem.bytes").Set(4096)
		r.Gauge("peak").SetMax(3)
		r.Gauge("peak").SetMax(9)
		r.Gauge("peak").SetMax(2)
		for v := int64(1); v <= 100; v++ {
			r.Histogram("lat.ns").Observe(v * 10)
		}
		return r
	}
	j1, err := build().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := build().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("snapshot JSON not deterministic:\n%s\nvs\n%s", j1, j2)
	}
	s := build().Snapshot()
	if s.Counters["z.queries"] != 7 || s.Counters["a.flushes"] != 1 {
		t.Errorf("counters = %v", s.Counters)
	}
	if s.Gauges["peak"] != 9 {
		t.Errorf("SetMax gauge = %d, want 9", s.Gauges["peak"])
	}
	if s.Histograms["lat.ns"].Count != 100 {
		t.Errorf("histogram count = %d", s.Histograms["lat.ns"].Count)
	}
}

func TestRegistrySameHandle(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter should return a stable handle")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("Gauge should return a stable handle")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Error("Histogram should return a stable handle")
	}
}

func TestAggregateSpans(t *testing.T) {
	spans := []OpSpan{
		{Op: "scan", Part: 0, WallNs: 100, BusyNs: 90, TuplesOut: 10},
		{Op: "scan", Part: 1, WallNs: 150, BusyNs: 120, TuplesOut: 12},
		{Op: "select", Part: 0, WallNs: 50, BusyNs: 40, TuplesIn: 22, TuplesOut: 5},
	}
	ops := AggregateSpans(spans)
	if len(ops) != 2 {
		t.Fatalf("got %d ops, want 2", len(ops))
	}
	if ops[0].Name != "scan" || ops[0].Instances != 2 || ops[0].WallNs != 150 ||
		ops[0].BusyNs != 210 || ops[0].TuplesOut != 22 {
		t.Errorf("scan aggregate = %+v", ops[0])
	}
	if ops[1].Name != "select" || ops[1].TuplesIn != 22 {
		t.Errorf("select aggregate = %+v", ops[1])
	}
	p := &QueryProfile{Operators: ops, ExecNs: 200}
	if tr := p.Tree(); tr == "" {
		t.Error("Tree() empty")
	}
	if _, err := p.JSON(); err != nil {
		t.Errorf("JSON: %v", err)
	}
}

package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"simdb/internal/adm"
	"simdb/internal/algebra"
	"simdb/internal/aqlp"
	"simdb/internal/hyracks"
	"simdb/internal/obs"
	"simdb/internal/obs/trace"
	"simdb/internal/optimizer"
	"simdb/internal/storage"
)

// QueryStats reports one query's execution profile.
type QueryStats struct {
	// QueryID is the process-wide stable ID assigned at admission; the
	// same ID stamps the trace, profile, slow-log line, spill directory,
	// and any error payload.
	QueryID uint64
	// AdmissionNs is the time spent waiting for a QueryManager slot.
	AdmissionNs int64
	ParseNs     int64
	TranslateNs int64
	OptimizeNs  int64
	JobGenNs    int64
	ExecNs      int64 // real wall time of the parallel job

	// PlanCacheHit is true when the compiled-plan cache served this
	// query: parse, translate, and optimize were skipped entirely and
	// their Ns fields are zero.
	PlanCacheHit bool

	// Specialized is true when the query ran a specialized plan build:
	// the optimizer's specialization pass (constant folding,
	// assign/select fusion, compiled expression evaluators) was applied,
	// either because the session asked for it or because the plan crossed
	// the promotion hit threshold.
	Specialized bool

	// EstimatedParallel is the cost model's makespan estimate for the
	// configured node count (see Config.CostModel) — the number the
	// scale-out/speed-up experiments report.
	EstimatedParallel time.Duration

	MaxNodeBusyNs int64
	TotalBusyNs   int64
	MaxNodeTuples int64
	BytesShuffled int64
	NetMessages   int64

	// RowsOut is the result row count, whether rows were buffered into
	// Result.Rows or streamed through a StreamHandler (where Result.Rows
	// stays nil).
	RowsOut int64

	// MemBudget is the operator memory budget the query ran under (0 =
	// unlimited); MemHighWater is the accountant's peak reservation and
	// SpillRuns/SpilledBytes total the run files operators wrote past the
	// budget. All zero for unbudgeted queries.
	MemBudget    int64
	MemHighWater int64
	SpillRuns    int64
	SpilledBytes int64

	IndexSearches   int64
	CandidatesTotal int64
	PostingsRead    int64
	// VerifiedTotal counts index candidates that survived the global
	// verification select; OccurrenceT is the largest T-occurrence
	// threshold any index search used.
	VerifiedTotal int64
	OccurrenceT   int64
	// CornerCaseFallbacks counts similarity predicates the optimizer
	// left on the scan plan because of a compile-time corner case.
	CornerCaseFallbacks int

	PlanOps     int
	LogicalPlan string
	PhysicalOps []hyracks.OpStats
	RuleTrace   []string
}

// Result is a query's outcome.
type Result struct {
	Rows  []adm.Value
	Stats QueryStats
	// Profile is the operator-level runtime profile, populated only when
	// the session ran `set profile 'on';` (EXPLAIN ANALYZE-style).
	Profile *obs.QueryProfile
}

// Session carries statement-scoped state (use/set) across Execute
// calls, like one AsterixDB client connection.
//
// Ownership: a Session belongs to a single goroutine (one client
// connection). Execute mutates it (use/set/DDL statements), so sharing
// one Session across goroutines races; give each concurrent client its
// own Session instead. Execution itself snapshots the session's state
// per query, so the running query never re-reads the Session after
// Execute's statement phase.
type Session struct {
	Dataverse    string
	SimFunction  string
	SimThreshold string
	// Profile requests an operator-level runtime profile with each query
	// result (`set profile 'on';`). Off by default: span collection only
	// happens when a profile was asked for.
	Profile bool
	// MemoryBudget is this session's per-query operator memory budget:
	// 0 inherits Config.QueryMemoryBudget, a positive value overrides it,
	// and -1 (`set memorybudget 'unlimited';`) disables budgeting even
	// when the config sets a default.
	MemoryBudget int64
	// Opts overrides the optimizer options; nil means defaults.
	Opts *optimizer.Options
}

// NewSession returns a session with the Default dataverse.
func NewSession() *Session { return &Session{Dataverse: "Default"} }

// sessionState is an immutable per-query snapshot of the session fields
// that feed compilation. Taking it by value decouples the running query
// from later Session mutations.
type sessionState struct {
	Dataverse    string
	SimFunction  string
	SimThreshold string
	Profile      bool
	MemoryBudget int64
	Opts         optimizer.Options
}

// snapshotSession captures the compile-relevant session state. The
// session's memory budget resolves against the cluster default into
// Opts.MemoryBudgetBytes, so budget-aware optimizer rules see the
// effective value and the plan-cache key separates plans compiled under
// different budgets.
func (c *Cluster) snapshotSession(s *Session) sessionState {
	st := sessionState{
		Dataverse:    s.Dataverse,
		SimFunction:  s.SimFunction,
		SimThreshold: s.SimThreshold,
		Profile:      s.Profile,
		MemoryBudget: s.MemoryBudget,
		Opts:         optimizer.DefaultOptions(),
	}
	if s.Opts != nil {
		st.Opts = *s.Opts
	}
	if st.Opts.MemoryBudgetBytes == 0 {
		st.Opts.MemoryBudgetBytes = c.resolveMemoryBudget(s.MemoryBudget)
	} else if st.Opts.MemoryBudgetBytes < 0 {
		st.Opts.MemoryBudgetBytes = 0
	}
	return st
}

// resolveMemoryBudget turns a session budget into the effective
// per-query budget in bytes (0 = unlimited).
func (c *Cluster) resolveMemoryBudget(sessBudget int64) int64 {
	switch {
	case sessBudget < 0:
		return 0
	case sessBudget > 0:
		return sessBudget
	default:
		return c.cfg.QueryMemoryBudget
	}
}

// StreamHandler receives a streamed query's lifecycle callbacks. OnRow
// is invoked once per result row, in result order, from the job's
// collector goroutine WHILE the job is still running: a slow OnRow
// exerts backpressure through the runtime's bounded frame channels, so
// per-query buffering stays bounded by a frame multiple rather than the
// result size. An OnRow error aborts the query. OnQueryID, when set, is
// called once with the query's stable ID before admission — front ends
// use it to expose the ID (for cancellation) ahead of the first row.
type StreamHandler struct {
	OnQueryID func(id uint64)
	OnRow     func(v adm.Value) error
}

// deliver pushes buffered rows (explain output, plan text) through the
// handler in order.
func (h *StreamHandler) deliver(rows []adm.Value) error {
	for _, r := range rows {
		if err := h.OnRow(r); err != nil {
			return err
		}
	}
	return nil
}

// Execute runs a full AQL request — statements then an optional query —
// and returns the query result (nil Rows for statement-only requests).
// Execution is admission-controlled: at most Config.MaxConcurrentQueries
// requests run at once and Config.QueryTimeout (if set) bounds each
// one. Cancellation of ctx propagates through the runtime into storage
// scans.
func (c *Cluster) Execute(ctx context.Context, sess *Session, src string) (*Result, error) {
	return c.executeRequest(ctx, sess, src, nil)
}

// ExecuteStream runs a request like Execute but delivers result rows
// incrementally through h instead of buffering them: the returned
// Result has nil Rows and h.OnRow sees each row as the engine produces
// it. Everything else — admission, timeouts, the plan cache, typed
// errors — behaves identically.
func (c *Cluster) ExecuteStream(ctx context.Context, sess *Session, src string, h StreamHandler) (*Result, error) {
	if h.OnRow == nil {
		return nil, fmt.Errorf("cluster: ExecuteStream needs an OnRow handler")
	}
	return c.executeRequest(ctx, sess, src, &h)
}

func (c *Cluster) executeRequest(ctx context.Context, sess *Session, src string, stream *StreamHandler) (*Result, error) {
	if sess == nil {
		sess = NewSession()
	}
	t0 := time.Now()
	queriesTotal.Inc()
	// Every query gets a stable process-wide ID, a live-registry entry
	// (GET /queries, CancelQuery), and a trace. The cancel func covers
	// the whole lifecycle, so cancellation lands whether the query is
	// still waiting for admission or already executing.
	qid := trace.NextQueryID()
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	qr := c.registerQuery(qid, src, cancel)
	qr.stream = stream
	if stream != nil && stream.OnQueryID != nil {
		// Announce the ID before admission, so a front end can expose it
		// (e.g. for cancellation) while the query still waits for a slot.
		stream.OnQueryID(qid)
	}
	// Admission charges the budget in effect at request entry; a `set
	// memorybudget` inside this request applies from the next one.
	qctx, release, admitNs, err := c.qm.admit(cctx, c.snapshotSession(sess).Opts.MemoryBudgetBytes)
	if err != nil {
		queryErrors.Inc()
		err = &QueryError{QueryID: qid, Err: err}
		c.unregisterQuery(qr, err)
		return nil, err
	}
	qr.tr.SpanAt(trace.RootSpan, "admission", trace.CatPhase,
		time.Now().Add(-time.Duration(admitNs)), time.Duration(admitNs))
	res, err := c.execute(qctx, sess, src, admitNs, qr)
	if stream != nil && err == nil && res != nil && len(res.Rows) > 0 {
		// Paths that buffer by nature (explain, explain analyze) deliver
		// their rows through the stream here so streamed requests never
		// carry rows in the Result.
		err = stream.deliver(res.Rows)
		res.Rows = nil
	}
	// release classifies the error: a per-query deadline kill comes back
	// wrapped in ErrQueryTimeout.
	err = release(err)
	wallNs := time.Since(t0).Nanoseconds()
	queryLatency.Observe(wallNs)
	if err != nil {
		queryErrors.Inc()
		err = &QueryError{QueryID: qid, Err: err}
	}
	if res != nil {
		res.Stats.QueryID = qid
		if res.Profile != nil {
			res.Profile.QueryID = qid
		}
	}
	c.unregisterQuery(qr, err)
	if th := c.slowThresh.Load(); th > 0 && wallNs >= th {
		c.logSlowQuery(qid, src, wallNs, res, err)
	}
	return res, err
}

// isExplainRequest reports whether normalized request text carries a
// leading `explain` keyword, before any parse happens. Explain requests
// bypass the plan cache on both lookup and store: a cached plan replay
// would lose the explain rendering.
func isExplainRequest(norm string) bool {
	return norm == "explain" || strings.HasPrefix(norm, "explain ") || strings.HasPrefix(norm, "explain(")
}

// execute runs one admitted request: plan-cache fast path, else
// parse → statements → compile (+ cache store) → run.
func (c *Cluster) execute(ctx context.Context, sess *Session, src string, admitNs int64, qr *queryRun) (*Result, error) {
	norm := normalizeAQL(src)
	key := planKey{
		text:         norm,
		dataverse:    sess.Dataverse,
		simFunction:  sess.SimFunction,
		simThreshold: sess.SimThreshold,
		profile:      sess.Profile,
		opts:         c.snapshotSession(sess).Opts,
	}
	explain := isExplainRequest(norm)
	// Epoch is read before the lookup AND before any compile below: an
	// entry stored under this epoch can never reflect catalog state
	// newer than what its key claims, so DDL invalidation is sound.
	epoch := c.Catalog.Epoch()
	// promote is set when a cached base plan crosses the hit threshold:
	// the lookup below declines to serve it and the compile path instead
	// rebuilds the plan with the specialization pass, caching the result
	// under its own (Specialize=true) key.
	promote := false
	specThresh := c.cfg.SpecializeAfterHits
	if !explain {
		qr.setPhase(phasePlanCache)
		lookup := qr.tr.StartSpan(trace.RootSpan, "plan-cache", trace.CatPhase)
		var (
			e  *planEntry
			ok bool
		)
		if !key.opts.Specialize && specThresh > 0 {
			// A promoted build of this plan, if one exists, serves ahead of
			// the base entry. peek counts no miss: most plans never promote
			// and the probe must not distort the miss rate.
			sk := key
			sk.opts.Specialize = true
			e, ok = c.planCache.peek(sk, epoch)
		}
		if !ok {
			e, ok = c.planCache.get(key, epoch)
			if ok && !key.opts.Specialize && specThresh > 0 &&
				e.hits.Add(1) >= int64(specThresh) {
				ok = false
				promote = true
				plancachePromotions.Inc()
			}
		}
		switch {
		case promote:
			lookup.End(trace.S("outcome", "promote"))
		default:
			lookup.End(trace.S("outcome", cacheOutcome(ok)))
		}
		if ok {
			// Warm hit: skip parse, translate, and optimize entirely. Replay
			// the request's session effects (use/set), then execute a private
			// deep copy of the cached plan.
			sess.Dataverse = e.post.Dataverse
			sess.SimFunction = e.post.SimFunction
			sess.SimThreshold = e.post.SimThreshold
			sess.Profile = e.post.Profile
			sess.MemoryBudget = e.post.MemoryBudget
			stats := &QueryStats{
				AdmissionNs:         admitNs,
				PlanCacheHit:        true,
				Specialized:         e.key.opts.Specialize,
				PlanOps:             e.planOps,
				LogicalPlan:         e.logicalPlan,
				RuleTrace:           append([]string(nil), e.ruleTrace...),
				CornerCaseFallbacks: e.cornerCases,
			}
			sp := qr.tr.StartSpan(trace.RootSpan, "plan-copy", trace.CatPhase)
			plan, _ := algebra.Copy(e.plan, &algebra.VarAlloc{})
			sp.End()
			return c.runJob(ctx, plan, stats, src, e.post, qr)
		}
	}

	qr.setPhase(phaseParse)
	t0 := time.Now()
	q, err := aqlp.Parse(src)
	parseNs := time.Since(t0).Nanoseconds()
	qr.tr.SpanAt(trace.RootSpan, "parse", trace.CatPhase, t0, time.Duration(parseNs))
	if err != nil {
		return nil, planErr(err)
	}

	// Only requests whose statements are all session-scoped (use/set)
	// are cacheable: their full effect is captured by the key's entry
	// state and the entry's recorded post state. DDL and other
	// statements bypass the cache (and bump the catalog epoch).
	cacheable := !q.Explain
	for _, stmt := range q.Stmts {
		switch stmt.(type) {
		case aqlp.UseStmt, aqlp.SetStmt:
		case aqlp.CreateFunctionStmt:
			cacheable = false
			// Log the raw source BEFORE applying: catalog snapshots
			// replicate UDFs to worker processes by replaying these
			// sources, and a snapshot cut between SetFunc and the note
			// would otherwise ship the bumped epoch without the function.
			c.Catalog.noteFuncDDL(src)
		default:
			cacheable = false
		}
		if err := c.executeStmt(sess, stmt); err != nil {
			return nil, planErr(err)
		}
	}
	if q.Body == nil {
		if q.Explain {
			return nil, planErr(fmt.Errorf("cluster: explain needs a query body"))
		}
		return &Result{Stats: QueryStats{AdmissionNs: admitNs, ParseNs: parseNs}}, nil
	}

	qr.setPhase(phaseCompile)
	st := c.snapshotSession(sess)
	if promote {
		// Hot-plan promotion: recompile with the specialization pass and
		// store under the Specialize=true key, so the base (interpreted)
		// entry stays intact for sessions that pin Specialize off via
		// explicit Opts and future lookups find the promoted build first.
		st.Opts.Specialize = true
		key.opts.Specialize = true
	}
	if q.Analyze {
		// explain analyze always measures: force span collection for this
		// run without flipping the session's profile setting.
		st.Profile = true
		// Reflect what the server would actually run: when the bare query
		// has a promoted (specialized) build in the cache, compile this
		// analyze run specialized too, so its operator table carries the
		// same [compiled] annotations the promoted plan executes with.
		if !st.Opts.Specialize && specThresh > 0 {
			sk := key
			sk.text = strings.TrimPrefix(strings.TrimPrefix(norm, "explain analyze"), " ")
			sk.opts.Specialize = true
			if _, promoted := c.planCache.peek(sk, epoch); promoted {
				st.Opts.Specialize = true
			}
		}
	}
	compileSpan := qr.tr.StartSpan(trace.RootSpan, "compile", trace.CatPhase)
	plan, stats, err := c.compileState(st, q.Body)
	if err != nil {
		compileSpan.End(trace.S("error", err.Error()))
		return nil, planErr(err)
	}
	compileSpan.End(
		trace.I("translate_ns", stats.TranslateNs),
		trace.I("optimize_ns", stats.OptimizeNs),
		trace.I("plan_ops", int64(stats.PlanOps)),
	)
	stats.ParseNs = parseNs
	stats.AdmissionNs = admitNs
	stats.Specialized = st.Opts.Specialize

	if q.Explain && !q.Analyze {
		// Bare explain: compile only, rows are the optimized plan text.
		stats.QueryID = qr.id
		return &Result{Rows: planRows(stats.LogicalPlan), Stats: *stats}, nil
	}

	if cacheable && c.planCache.Enabled() {
		cached, _ := algebra.Copy(plan, &algebra.VarAlloc{})
		c.planCache.put(&planEntry{
			key:         key,
			plan:        cached,
			epoch:       epoch,
			post:        st,
			planOps:     stats.PlanOps,
			logicalPlan: stats.LogicalPlan,
			ruleTrace:   append([]string(nil), stats.RuleTrace...),
			cornerCases: stats.CornerCaseFallbacks,
		})
	}
	if q.Analyze {
		// explain analyze output is the annotated plan, assembled after
		// execution: buffer the query's own rows (they only feed the row
		// count); executeRequest streams the analysis text afterwards.
		qr.stream = nil
	}
	res, err := c.runJob(ctx, plan, stats, src, st, qr)
	if err == nil && q.Analyze {
		res.Stats.QueryID = qr.id
		if res.Profile != nil {
			res.Profile.QueryID = qr.id
		}
		res.Rows = explainAnalyzeRows(res)
	}
	return res, err
}

// cacheOutcome labels a plan-cache lookup span.
func cacheOutcome(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// planRows renders a plan text as one result row per line.
func planRows(plan string) []adm.Value {
	lines := strings.Split(strings.TrimRight(plan, "\n"), "\n")
	rows := make([]adm.Value, len(lines))
	for i, l := range lines {
		rows[i] = adm.NewString(l)
	}
	return rows
}

func (c *Cluster) executeStmt(sess *Session, stmt aqlp.Stmt) error {
	switch s := stmt.(type) {
	case aqlp.UseStmt:
		if !c.Catalog.HasDataverse(s.Dataverse) {
			return fmt.Errorf("cluster: unknown dataverse %q", s.Dataverse)
		}
		sess.Dataverse = s.Dataverse
		return nil
	case aqlp.SetStmt:
		switch s.Key {
		case "simfunction":
			sess.SimFunction = s.Val
		case "simthreshold":
			sess.SimThreshold = s.Val
		case "profile":
			switch strings.ToLower(s.Val) {
			case "on", "true", "1":
				sess.Profile = true
			case "off", "false", "0":
				sess.Profile = false
			default:
				return fmt.Errorf("cluster: set profile wants on/off, got %q", s.Val)
			}
		case "memorybudget":
			b, err := aqlp.ParseMemorySize(s.Val)
			if err != nil {
				return fmt.Errorf("cluster: set memorybudget: %w", err)
			}
			if b == 0 {
				// Explicitly unlimited, overriding any configured default.
				sess.MemoryBudget = -1
			} else {
				sess.MemoryBudget = b
			}
		default:
			return fmt.Errorf("cluster: unknown set property %q", s.Key)
		}
		return nil
	case aqlp.CreateDataverseStmt:
		return c.Catalog.CreateDataverse(s.Name)
	case aqlp.CreateDatasetStmt:
		_, err := c.Catalog.CreateDataset(sess.Dataverse, s.Name, s.PKField, s.AutoPK)
		return err
	case aqlp.CreateIndexStmt:
		ix := optimizer.IndexMeta{Name: s.Name, Field: s.Field, Type: s.IType, GramLen: s.GramLen}
		if s.IType != "btree" && s.IType != "keyword" && s.IType != "ngram" {
			return fmt.Errorf("cluster: unknown index type %q", s.IType)
		}
		if s.IType == "ngram" && s.GramLen < 1 {
			return fmt.Errorf("cluster: ngram index needs a gram length")
		}
		// Exclude concurrent inserts for the whole build+register window:
		// the bulk build sees a stable dataset and no insert runs against
		// a catalog entry that is about to change. Build BEFORE
		// registering — queries compile against the catalog without
		// taking ddlMu, so the index must be complete by the time it
		// becomes visible to the optimizer.
		c.ddlMu.Lock()
		defer c.ddlMu.Unlock()
		meta, ok := c.Catalog.Dataset(sess.Dataverse, s.Dataset)
		if !ok {
			return fmt.Errorf("cluster: unknown dataset %s.%s", sess.Dataverse, s.Dataset)
		}
		for _, existing := range meta.Indexes {
			if existing.Name == s.Name {
				return fmt.Errorf("cluster: index %q exists on %q", s.Name, s.Dataset)
			}
		}
		if err := c.BuildIndex(sess.Dataverse, s.Dataset, ix); err != nil {
			return err
		}
		if err := c.Catalog.AddIndex(sess.Dataverse, s.Dataset, ix); err != nil {
			return err
		}
		obs.Log().Info("index created",
			"dataverse", sess.Dataverse, "dataset", s.Dataset,
			"index", s.Name, "type", s.IType)
		return nil
	case aqlp.CreateFunctionStmt:
		c.Catalog.SetFunc(s.Name, aqlp.FuncDef{Params: s.Params, Body: s.Body})
		return nil
	case aqlp.DropDatasetStmt:
		return c.DropDataset(sess.Dataverse, s.Name)
	}
	return fmt.Errorf("cluster: unsupported statement %T", stmt)
}

// Compile parses, translates, and optimizes a query without running it;
// used by plan-inspection tooling and the Figure 15 experiment.
func (c *Cluster) Compile(sess *Session, body aqlp.Node) (*algebra.Op, *QueryStats, error) {
	if sess == nil {
		sess = NewSession()
	}
	return c.compileState(c.snapshotSession(sess), body)
}

// compileState translates and optimizes against an immutable session
// snapshot, so compilation never races Session mutations.
func (c *Cluster) compileState(st sessionState, body aqlp.Node) (*algebra.Op, *QueryStats, error) {
	stats := &QueryStats{}
	alloc := &algebra.VarAlloc{}
	tr := &aqlp.Translator{
		Catalog:          c.Catalog,
		Alloc:            alloc,
		DefaultDataverse: st.Dataverse,
		SimFunction:      st.SimFunction,
		SimThreshold:     st.SimThreshold,
		Funcs:            c.Catalog.Funcs(),
	}
	t0 := time.Now()
	plan, err := tr.TranslateQuery(body)
	if err != nil {
		return nil, nil, err
	}
	stats.TranslateNs = time.Since(t0).Nanoseconds()

	var cs optimizer.CompileStats
	o := &optimizer.Optimizer{Catalog: c.Catalog, Alloc: alloc, Opts: st.Opts, Trace: &stats.RuleTrace, Stats: &cs}
	t0 = time.Now()
	plan, err = o.Optimize(plan)
	if err != nil {
		return nil, nil, err
	}
	stats.OptimizeNs = time.Since(t0).Nanoseconds()
	stats.CornerCaseFallbacks = cs.CornerCaseFallbacks
	stats.PlanOps = algebra.CountOps(plan)
	stats.LogicalPlan = algebra.Print(plan)
	return plan, stats, nil
}

// runJob generates and executes the hyracks job for a compiled plan,
// filling in the runtime half of stats. With st.Profile set, the
// runtime collects one span per operator instance and the result
// carries the assembled QueryProfile. A positive memory budget runs the
// job under a memory accountant with a per-query spill directory; the
// directory is removed before returning on every path (success, error,
// cancel, timeout, panic).
//
// In tcp mode the job is dispatched to every worker process BEFORE the
// local run starts: the local run hosts node 0's instances (among them
// the collector) and is what drains the frames the workers ship here.
// Workers recompile the shipped request text to the identical DAG; the
// coordinator merges their stats halves into the result.
func (c *Cluster) runJob(ctx context.Context, plan *algebra.Op, stats *QueryStats, src string, st sessionState, qr *queryRun) (*Result, error) {
	profile := st.Profile
	memBudget := st.Opts.MemoryBudgetBytes
	qr.setPhase(phaseJobGen)
	counters := &QueryCounters{}
	t0 := time.Now()
	job, collector, err := c.GenerateJob(plan, counters)
	if err != nil {
		return nil, fmt.Errorf("%w\nplan:\n%s", err, stats.LogicalPlan)
	}
	stats.JobGenNs = time.Since(t0).Nanoseconds()
	qr.tr.SpanAt(trace.RootSpan, "jobgen", trace.CatPhase, t0, time.Duration(stats.JobGenNs))

	if qr.stream != nil {
		// Streaming delivery: the collector hands each result tuple to the
		// handler as it arrives instead of buffering it. The handler runs
		// on the collector's goroutine, so a slow consumer backpressures
		// the job through the bounded frame channels; a handler error
		// (client gone) aborts the job.
		onRow := qr.stream.OnRow
		collector.Sink = func(t hyracks.Tuple) error { return onRow(t[0]) }
	}

	topo := hyracks.Topology{
		Partitions:      c.cfg.Partitions(),
		PartsPerNode:    c.cfg.PartitionsPerNode,
		NetFrameLatency: time.Duration(c.simNetLat.Load()),
		CollectSpans:    profile,
		FrameSize:       c.cfg.FrameSize,
		ChanCap:         c.cfg.ChanCap,
	}
	if acct := hyracks.NewMemoryAccountant(memBudget); acct != nil {
		spill := storage.NewRunFileManager(
			filepath.Join(c.spillTmpRoot(), fmt.Sprintf("q%d", qr.id)))
		defer spill.Close()
		topo.Mem = acct
		topo.Spill = spill
		stats.MemBudget = acct.Budget()
		if qr.aq != nil {
			qr.aq.mem.Store(acct)
		}
	}
	var remoteCh <-chan remoteJobResult
	if c.remote != nil {
		topo.Transport = c.remote.net
		topo.JobID = qr.id
		rctx, cancelLocal := context.WithCancel(ctx)
		defer cancelLocal()
		ctx = rctx
		remoteCh = c.remote.startJob(ctx, cancelLocal, jobReq{
			JobID:        qr.id,
			Src:          src,
			State:        st,
			Epoch:        c.Catalog.Epoch(),
			MemBudget:    memBudget,
			CollectSpans: profile,
			TOccAlgo:     c.tOccAlgo.Load(),
		})
	}
	qr.setPhase(phaseExecute)
	execSpan := qr.tr.StartSpan(trace.RootSpan, "execute", trace.CatPhase)
	topo.Trace = qr.tr
	topo.TraceParent = execSpan.ID
	// Executor goroutines inherit the query_id pprof label, so CPU and
	// goroutine profiles attribute work to specific queries.
	var jstats *hyracks.JobStats
	pprof.Do(ctx, pprof.Labels("query_id", strconv.FormatUint(qr.id, 10)), func(ctx context.Context) {
		jstats, err = hyracks.Run(ctx, job, topo)
	})
	if remoteCh != nil {
		if err != nil {
			// The local half died (error or cancellation): abort the
			// workers' halves too, or their senders would wait forever on
			// flow-control credit for frames node 0 no longer drains.
			c.remote.cancelJob(qr.id)
		}
		rres := <-remoteCh
		c.remote.net.EndJob(qr.id)
		if err == nil {
			err = rres.err
		}
		if err == nil {
			for _, ws := range rres.stats {
				jstats.Merge(ws)
			}
			for _, cv := range rres.counters {
				mergeCounters(counters, cv)
			}
		}
	}
	if jstats != nil {
		execSpan.End(
			trace.I("bytes_shuffled", jstats.BytesShuffled),
			trace.I("net_messages", jstats.NetMessages),
		)
	} else {
		execSpan.End()
	}
	if topo.Mem != nil {
		stats.MemHighWater = topo.Mem.HighWater()
		stats.SpillRuns, stats.SpilledBytes = jstats.SpillTotals()
	}
	if err != nil {
		return nil, err
	}
	stats.ExecNs = jstats.WallNs
	stats.MaxNodeBusyNs = jstats.MaxNodeBusyNs()
	stats.TotalBusyNs = jstats.TotalBusyNs()
	stats.MaxNodeTuples = jstats.MaxNodeTuples()
	stats.BytesShuffled = jstats.BytesShuffled
	stats.NetMessages = jstats.NetMessages
	stats.PhysicalOps = jstats.Ops
	stats.IndexSearches = counters.IndexSearches.Load()
	stats.CandidatesTotal = counters.CandidatesTotal.Load()
	stats.PostingsRead = counters.PostingsRead.Load()
	stats.VerifiedTotal = counters.VerifiedTotal.Load()
	stats.OccurrenceT = counters.OccurrenceT.Load()

	model := CostModel{NetBandwidthMBps: c.cfg.NetBandwidthMBps, NetLatencyUs: c.cfg.NetLatencyUs, Nodes: c.cfg.NumNodes}
	stats.EstimatedParallel = model.EstimateParallel(stats.MaxNodeTuples, stats.BytesShuffled, stats.NetMessages)

	nrows := int(collector.Delivered.Load())
	var rows []adm.Value
	if qr.stream == nil {
		rows = make([]adm.Value, len(collector.Tuples))
		for i, t := range collector.Tuples {
			rows[i] = t[0]
		}
	}
	res := &Result{Rows: rows, Stats: *stats}
	res.Stats.RowsOut = int64(nrows)
	if profile {
		profileQueries.Inc()
		res.Profile = buildProfile(src, stats, jstats, nrows)
	}
	return res, nil
}

// buildProfile assembles the PROFILE payload from the filled stats and
// the job's per-instance spans.
func buildProfile(src string, stats *QueryStats, jstats *hyracks.JobStats, rows int) *obs.QueryProfile {
	p := &obs.QueryProfile{
		Query: truncateQuery(src),
		Compile: obs.CompileProfile{
			AdmissionNs:  stats.AdmissionNs,
			ParseNs:      stats.ParseNs,
			TranslateNs:  stats.TranslateNs,
			OptimizeNs:   stats.OptimizeNs,
			JobGenNs:     stats.JobGenNs,
			PlanCacheHit: stats.PlanCacheHit,
		},
		ExecNs:      stats.ExecNs,
		RowsOut:     int64(rows),
		Spans:       jstats.Spans,
		LogicalPlan: stats.LogicalPlan,
		Similarity: obs.SimilarityProfile{
			OccurrenceT:         stats.OccurrenceT,
			IndexSearches:       stats.IndexSearches,
			PostingsRead:        stats.PostingsRead,
			Candidates:          stats.CandidatesTotal,
			Verified:            stats.VerifiedTotal,
			CornerCaseFallbacks: int64(stats.CornerCaseFallbacks),
		},
	}
	for _, op := range jstats.Ops {
		p.Operators = append(p.Operators, obs.OpProfile{
			Name:         op.Name,
			Instances:    op.Instances,
			WallNs:       op.WallNs,
			BusyNs:       op.BusyNs,
			TuplesIn:     op.TuplesIn,
			TuplesOut:    op.TuplesOut,
			FramesSent:   op.FramesSent,
			BytesMoved:   op.BytesMoved,
			SpillRuns:    op.SpillRuns,
			SpilledBytes: op.SpilledBytes,
		})
	}
	return p
}

package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestSnapshotConcurrentWithObserve hammers a registry with counter
// increments, gauge sets, and histogram observations while snapshots
// are taken concurrently; run under -race this proves Snapshot never
// tears against the hot-path atomics.
func TestSnapshotConcurrentWithObserve(t *testing.T) {
	r := NewRegistry()
	const writers = 4
	const perWriter = 5000

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("test.counter")
			g := r.Gauge("test.gauge")
			h := r.Histogram("test.hist")
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i % 1000))
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		s := r.Snapshot()
		if got := s.Counters["test.counter"]; got > writers*perWriter {
			t.Fatalf("counter overshoot: %d", got)
		}
		if h, ok := s.Histograms["test.hist"]; ok && h.Count > 0 && h.Max > 999 {
			t.Fatalf("histogram max %d beyond largest observation", h.Max)
		}
		select {
		case <-done:
			s := r.Snapshot()
			if got := s.Counters["test.counter"]; got != writers*perWriter {
				t.Fatalf("counter = %d, want %d", got, writers*perWriter)
			}
			if got := s.Histograms["test.hist"].Count; got != int64(writers*perWriter) {
				t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
			}
			return
		default:
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %d, want 0", got)
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot not all-zero: %+v", s)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := newHistogram()
	h.Observe(12345)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 12345 {
		t.Fatalf("count/sum = %d/%d, want 1/12345", s.Count, s.Sum)
	}
	if s.Min != 12345 || s.Max != 12345 {
		t.Fatalf("min/max = %d/%d, want 12345/12345", s.Min, s.Max)
	}
	// Every quantile of a single observation is that observation: the
	// bucket upper bound is clamped to the observed max.
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(p); got != 12345 {
			t.Fatalf("q%.2f = %d, want 12345", p, got)
		}
	}
}

func TestHistogramTopBucketOverflow(t *testing.T) {
	h := newHistogram()
	h.Observe(math.MaxInt64)
	h.Observe(math.MaxInt64 - 1)
	if got := h.Quantile(1); got != math.MaxInt64 {
		t.Fatalf("p100 = %d, want MaxInt64", got)
	}
	if got := h.Quantile(0.5); got != math.MaxInt64 {
		// Both land in the final clamped bucket, whose upper bound is
		// capped at the observed max.
		t.Fatalf("p50 = %d, want MaxInt64", got)
	}
	// The largest possible value must stay in range, and its bucket's
	// upper bound must clamp to MaxInt64 rather than overflow.
	idx := bucketOf(math.MaxInt64)
	if idx < 0 || idx >= histBuckets {
		t.Fatalf("bucketOf(MaxInt64) = %d out of range", idx)
	}
	if got := bucketUpper(histBuckets - 1); got != math.MaxInt64 {
		t.Fatalf("bucketUpper(top) = %d, want MaxInt64", got)
	}
	if got := h.Snapshot().Max; got != math.MaxInt64 {
		t.Fatalf("max = %d, want MaxInt64", got)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := newHistogram()
	h.Observe(-42)
	s := h.Snapshot()
	if s.Min != 0 || s.Max != 0 || s.Sum != 0 || s.Count != 1 {
		t.Fatalf("negative observation not clamped: %+v", s)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("cluster.queries").Add(7)
	r.Gauge("storage.disk.bytes").Set(1 << 20)
	h := r.Histogram("cluster.query_latency_ns")
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i) * 1000)
	}

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP simdb_cluster_queries ",
		"# TYPE simdb_cluster_queries counter\n",
		"simdb_cluster_queries 7\n",
		"# TYPE simdb_storage_disk_bytes gauge\n",
		"simdb_storage_disk_bytes 1048576\n",
		"# TYPE simdb_cluster_query_latency_ns summary\n",
		`simdb_cluster_query_latency_ns{quantile="0.5"}`,
		`simdb_cluster_query_latency_ns{quantile="0.99"}`,
		"simdb_cluster_query_latency_ns_count 100\n",
		"simdb_cluster_query_latency_ns_max ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// Deterministic output for equal snapshots.
	var b2 strings.Builder
	if err := r.Snapshot().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("WritePrometheus output not deterministic")
	}
}

func TestPromNameAndEscaping(t *testing.T) {
	if got := promName("cluster.query-latency.ns"); got != "simdb_cluster_query_latency_ns" {
		t.Fatalf("promName = %q", got)
	}
	if got := promEscapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("promEscapeLabel = %q", got)
	}
	if got := promEscapeHelp("x\\y\nz"); got != `x\\y\nz` {
		t.Fatalf("promEscapeHelp = %q", got)
	}
}

package cluster

import (
	"context"
	"sync/atomic"
	"time"
)

// QueryManager gates concurrent query execution: a bounded admission
// semaphore keeps the cluster from oversubscribing itself under heavy
// traffic, a per-query deadline bounds runaway queries, and per-query
// stats are collected without racing (each query gets its own
// QueryStats; shared counters are atomic). Admission waits respect the
// caller's context, so a cancelled client stops waiting immediately.
type QueryManager struct {
	sem     chan struct{}
	timeout time.Duration

	admitted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64
	active    atomic.Int64
	peak      atomic.Int64
}

// newQueryManager builds a manager admitting at most maxConcurrent
// queries at a time (<= 0 means the default of 64) with an optional
// per-query timeout (0 means none).
func newQueryManager(maxConcurrent int, timeout time.Duration) *QueryManager {
	if maxConcurrent <= 0 {
		maxConcurrent = 64
	}
	return &QueryManager{
		sem:     make(chan struct{}, maxConcurrent),
		timeout: timeout,
	}
}

// admit blocks until a slot frees up or ctx is done. On success it
// returns the (possibly deadline-wrapped) query context, a release
// function, and the time spent waiting for admission.
func (m *QueryManager) admit(ctx context.Context) (context.Context, func(err error), int64, error) {
	t0 := time.Now()
	select {
	case m.sem <- struct{}{}:
	case <-ctx.Done():
		m.rejected.Add(1)
		return nil, nil, 0, ctx.Err()
	}
	waitNs := time.Since(t0).Nanoseconds()
	m.admitted.Add(1)
	a := m.active.Add(1)
	for {
		p := m.peak.Load()
		if a <= p || m.peak.CompareAndSwap(p, a) {
			break
		}
	}
	qctx := ctx
	cancel := func() {}
	if m.timeout > 0 {
		qctx, cancel = context.WithTimeout(ctx, m.timeout)
	}
	release := func(err error) {
		cancel()
		m.active.Add(-1)
		if err != nil {
			m.failed.Add(1)
		} else {
			m.completed.Add(1)
		}
		<-m.sem
	}
	return qctx, release, waitNs, nil
}

// QueryManagerStats is a point-in-time snapshot of serving counters.
type QueryManagerStats struct {
	Admitted   int64 // queries that obtained a slot
	Completed  int64 // finished without error
	Failed     int64 // finished with an error (including timeouts)
	Rejected   int64 // gave up waiting for admission (context done)
	Active     int64 // currently executing
	PeakActive int64 // high-water mark of concurrent execution
	MaxActive  int   // the admission bound
}

// Stats returns the current counters.
func (m *QueryManager) Stats() QueryManagerStats {
	return QueryManagerStats{
		Admitted:   m.admitted.Load(),
		Completed:  m.completed.Load(),
		Failed:     m.failed.Load(),
		Rejected:   m.rejected.Load(),
		Active:     m.active.Load(),
		PeakActive: m.peak.Load(),
		MaxActive:  cap(m.sem),
	}
}

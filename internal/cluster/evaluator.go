package cluster

import (
	"simdb/internal/adm"
	"simdb/internal/algebra"
	"simdb/internal/hyracks"
	"simdb/internal/obs"
)

// tupleEval evaluates one scalar expression over a tuple.
type tupleEval func(t hyracks.Tuple) (adm.Value, error)

// evaluatorCompiles counts expressions resolved to compiled closures at
// job-generation time (specialized plans only).
var evaluatorCompiles = obs.C("cluster.evaluator.compiles")

// evalFactory resolves an expression into a per-operator-instance
// evaluator factory at job-generation time.
//
// When compiled is set — the optimizer's specialization pass marked the
// operator — the expression compiles once here into a pure closure
// (column slots resolved, constants folded, hot forms fused) that every
// instance shares. Otherwise, or when the compiler declines, each
// instance gets the tree interpreter with one Env allocated up front
// and reset per tuple: operator closures are shared across partitions,
// so the mutable Env must be per-instance state, but it need not be
// per-tuple.
func evalFactory(e algebra.Expr, cols map[algebra.Var]int, compiled bool) func() tupleEval {
	if compiled {
		if fn, ok := algebra.Compile(e, cols); ok {
			evaluatorCompiles.Inc()
			shared := tupleEval(func(t hyracks.Tuple) (adm.Value, error) { return fn(t) })
			return func() tupleEval { return shared }
		}
	}
	return func() tupleEval {
		env := algebra.NewEnv(cols, nil)
		return func(t hyracks.Tuple) (adm.Value, error) {
			env.Reset(t)
			return algebra.Eval(e, env)
		}
	}
}

// compiledMark suffixes physical operator names of specialized
// operators, so EXPLAIN ANALYZE's operator table shows which operators
// run compiled evaluators.
func compiledMark(name string, op *algebra.Op) string {
	if op.Compiled {
		return name + "[compiled]"
	}
	return name
}

package hyracks

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"simdb/internal/obs"
	"simdb/internal/obs/trace"
)

// OpStats is the per-operator aggregate over all instances. BusyNs,
// tuple, frame and byte counts are summed across instances; WallNs is
// the slowest instance's wall time.
type OpStats struct {
	Name       string
	Instances  int
	TuplesIn   int64
	TuplesOut  int64
	BusyNs     int64
	WallNs     int64
	FramesSent int64
	BytesMoved int64
	// SpillRuns and SpilledBytes count runs written to temp storage when
	// the operator exceeded its memory grant (0 when everything fit).
	SpillRuns    int64
	SpilledBytes int64
}

// JobStats summarizes one job execution: real wall time, per-node
// operator busy time (time not spent blocked on connectors), and the
// simulated network traffic. The cluster layer's cost model combines
// these into an estimated parallel makespan for the scale-out and
// speed-up experiments.
//
// Under a multi-process Transport each process fills only the slots of
// instances it ran; the coordinator merges the partial JobStats of
// every process into the query's totals.
type JobStats struct {
	WallNs        int64
	PerNodeBusyNs []int64
	// PerNodeTuples counts tuples emitted by each node's operator
	// instances — a contention-free work measure the cost model uses
	// for the scale-out/speed-up estimates (goroutine time-sharing on a
	// small host inflates busy time across configurations; tuple counts
	// do not).
	PerNodeTuples []int64
	BytesShuffled int64
	NetMessages   int64
	Ops           []OpStats
	// Spans holds one record per operator instance, populated only when
	// Topology.CollectSpans is set (PROFILE queries).
	Spans []obs.OpSpan
}

// SpillTotals returns the job-wide spill run and byte counts.
func (s *JobStats) SpillTotals() (runs, bytes int64) {
	for _, op := range s.Ops {
		runs += op.SpillRuns
		bytes += op.SpilledBytes
	}
	return runs, bytes
}

// MaxNodeTuples returns the busiest node's tuple count.
func (s *JobStats) MaxNodeTuples() int64 {
	var max int64
	for _, b := range s.PerNodeTuples {
		if b > max {
			max = b
		}
	}
	return max
}

// MaxNodeBusyNs returns the busiest node's operator time.
func (s *JobStats) MaxNodeBusyNs() int64 {
	var max int64
	for _, b := range s.PerNodeBusyNs {
		if b > max {
			max = b
		}
	}
	return max
}

// TotalBusyNs returns the summed operator time across nodes.
func (s *JobStats) TotalBusyNs() int64 {
	var sum int64
	for _, b := range s.PerNodeBusyNs {
		sum += b
	}
	return sum
}

// Merge folds another process's partial JobStats for the same job into
// s: per-node and per-operator figures add element-wise (each instance
// ran in exactly one process, so slots never overlap), traffic totals
// add (bytes are counted on the sending side only), operator wall
// times take the slowest instance, and spans append.
func (s *JobStats) Merge(o *JobStats) {
	if o == nil {
		return
	}
	for i := range o.PerNodeBusyNs {
		if i < len(s.PerNodeBusyNs) {
			s.PerNodeBusyNs[i] += o.PerNodeBusyNs[i]
		}
	}
	for i := range o.PerNodeTuples {
		if i < len(s.PerNodeTuples) {
			s.PerNodeTuples[i] += o.PerNodeTuples[i]
		}
	}
	s.BytesShuffled += o.BytesShuffled
	s.NetMessages += o.NetMessages
	for i := range o.Ops {
		if i >= len(s.Ops) {
			break
		}
		dst, src := &s.Ops[i], &o.Ops[i]
		dst.Instances += src.Instances
		dst.TuplesIn += src.TuplesIn
		dst.TuplesOut += src.TuplesOut
		dst.BusyNs += src.BusyNs
		dst.FramesSent += src.FramesSent
		dst.BytesMoved += src.BytesMoved
		dst.SpillRuns += src.SpillRuns
		dst.SpilledBytes += src.SpilledBytes
		if src.WallNs > dst.WallNs {
			dst.WallNs = src.WallNs
		}
	}
	s.Spans = append(s.Spans, o.Spans...)
}

// edge carries the plumbing for one (producer port, consumer port)
// connection: in-process channels for pairs whose two ends live in
// this process, transport streams for pairs that cross processes.
type edge struct {
	idx       int // deterministic edge index, part of every StreamID
	spec      ConnectorSpec
	prodParts int
	consParts int
	plain     []*refCountedChan // per consumer; nil for merging connectors or non-local consumers
	merged    [][]chan frame    // merged[consumer][producer]; nil rows for non-local consumers
	senders   [][]FrameSender   // senders[producer][consumer]; nil without cross-process pairs
	prodNodes []int
	consNodes []int
}

// forwarder bridges one inbound transport stream into the consumer-side
// channel the PortReader drains.
type forwarder struct {
	recv FrameReceiver
	ch   chan frame      // merging edge: this producer's private channel (closed at EOS)
	rc   *refCountedChan // plain edge: shared channel (done() at EOS)
}

// Run executes the job on the topology and blocks until every operator
// instance placed on this process's node finishes (every instance, when
// no Transport restricts placement). The first operator error cancels
// the job and is returned.
func Run(ctx context.Context, job *Job, topo Topology) (*JobStats, error) {
	start := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var bytesShuffled, netMessages atomic.Int64
	tr := topo.Transport
	chanCap := topo.chanCap()

	// Validate and build edges, indexed by (consumer op, input port).
	// Edge indexes are assigned in DAG construction order, so every
	// process compiling the same job derives identical StreamIDs.
	edges := make(map[*OpNode][]*edge)
	var forwarders []*forwarder
	nextEdge := 0
	nLocalStreams, nRemoteStreams := 0, 0
	for _, n := range job.nodes {
		if n.Parts < 1 {
			return nil, fmt.Errorf("hyracks: op %s has %d partitions", n.Name, n.Parts)
		}
		for _, in := range n.Inputs {
			if in.FromPort >= in.From.OutPorts {
				return nil, fmt.Errorf("hyracks: op %s reads missing port %d of %s", n.Name, in.FromPort, in.From.Name)
			}
			spec := in.Conn
			switch spec.Type {
			case OneToOne:
				if in.From.Parts != n.Parts {
					return nil, fmt.Errorf("hyracks: OneToOne between %s(%d) and %s(%d)", in.From.Name, in.From.Parts, n.Name, n.Parts)
				}
			case GatherOne, MergeOne:
				if n.Parts != 1 {
					return nil, fmt.Errorf("hyracks: %v into %s with %d parts", spec.Type, n.Name, n.Parts)
				}
			}
			e := &edge{idx: nextEdge, spec: spec, prodParts: in.From.Parts, consParts: n.Parts}
			nextEdge++
			e.prodNodes = make([]int, in.From.Parts)
			for p := range e.prodNodes {
				e.prodNodes[p] = topo.NodeOf(p, in.From.Parts)
			}
			e.consNodes = make([]int, n.Parts)
			for c := 0; c < n.Parts; c++ {
				e.consNodes[c] = topo.NodeOf(c, n.Parts)
			}
			merging := spec.Type == HashMerge || spec.Type == MergeOne
			if merging {
				e.merged = make([][]chan frame, n.Parts)
			} else {
				e.plain = make([]*refCountedChan, n.Parts)
			}
			for c := 0; c < n.Parts; c++ {
				if topo.hostsNode(e.consNodes[c]) {
					// Local consumer: channels for every producer — local
					// producers write them directly, remote producers feed
					// them through a forwarder goroutine per stream.
					var rc *refCountedChan
					if merging {
						e.merged[c] = make([]chan frame, in.From.Parts)
						for p := range e.merged[c] {
							e.merged[c][p] = make(chan frame, chanCap)
						}
					} else {
						rc = &refCountedChan{ch: make(chan frame, chanCap), remaining: in.From.Parts}
						e.plain[c] = rc
					}
					for p := 0; p < in.From.Parts; p++ {
						if topo.hostsNode(e.prodNodes[p]) {
							nLocalStreams++
							continue
						}
						recv, err := tr.OpenRecv(StreamID{Job: topo.JobID, Edge: e.idx, Prod: p, Cons: c}, e.prodNodes[p])
						if err != nil {
							return nil, fmt.Errorf("hyracks: open recv stream for %s: %w", n.Name, err)
						}
						fw := &forwarder{recv: recv}
						if merging {
							fw.ch = e.merged[c][p]
						} else {
							fw.rc = rc
						}
						forwarders = append(forwarders, fw)
					}
					continue
				}
				// Remote consumer: local producers send through the
				// transport; no channels exist on this side.
				for p := 0; p < in.From.Parts; p++ {
					if !topo.hostsNode(e.prodNodes[p]) {
						continue
					}
					s, err := tr.OpenSend(StreamID{Job: topo.JobID, Edge: e.idx, Prod: p, Cons: c}, e.consNodes[c])
					if err != nil {
						return nil, fmt.Errorf("hyracks: open send stream for %s: %w", n.Name, err)
					}
					if e.senders == nil {
						e.senders = make([][]FrameSender, in.From.Parts)
					}
					if e.senders[p] == nil {
						e.senders[p] = make([]FrameSender, n.Parts)
					}
					e.senders[p][c] = s
					nRemoteStreams++
				}
			}
			edges[n] = append(edges[n], e)
		}
	}
	if nLocalStreams > 0 {
		inprocStreams.Add(int64(nLocalStreams))
	}
	if nRemoteStreams > 0 {
		remoteStreams.Add(int64(nRemoteStreams))
	}

	// Output edges per (producer, port). Each output port must feed
	// exactly one consumer edge.
	outEdges := make(map[*OpNode][]*edge)
	for _, n := range job.nodes {
		outEdges[n] = make([]*edge, n.OutPorts)
	}
	for _, n := range job.nodes {
		for i, in := range n.Inputs {
			slot := outEdges[in.From]
			if slot[in.FromPort] != nil {
				return nil, fmt.Errorf("hyracks: output port %d of %s feeds two consumers", in.FromPort, in.From.Name)
			}
			slot[in.FromPort] = edges[n][i]
		}
	}
	for _, n := range job.nodes {
		for p, e := range outEdges[n] {
			if e == nil {
				return nil, fmt.Errorf("hyracks: output port %d of %s is unconnected", p, n.Name)
			}
		}
	}

	var reg *stateRegistry
	if delay := hangDumpAfter(); delay > 0 {
		reg = &stateRegistry{}
		stop := armWatchdog(reg, delay)
		defer stop()
	}

	nNodes := topo.Nodes()
	perNodeBusy := make([]int64, nNodes)
	perNodeTuples := make([]int64, nNodes)
	opAgg := make([]OpStats, len(job.nodes))
	var spans []obs.OpSpan
	var statsMu sync.Mutex

	var firstErr error
	var errOnce sync.Once
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	var wg sync.WaitGroup
	for _, fw := range forwarders {
		fw := fw
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch := fw.ch
			if ch == nil {
				ch = fw.rc.ch
			}
		loop:
			for {
				ts, ok := fw.recv.Recv(runCtx)
				if !ok {
					break
				}
				select {
				case ch <- frame{tuples: ts}:
				case <-runCtx.Done():
					break loop
				}
			}
			if fw.ch != nil {
				close(fw.ch)
			} else {
				fw.rc.done()
			}
		}()
	}
	for _, n := range job.nodes {
		n := n
		for p := 0; p < n.Parts; p++ {
			p := p
			node := topo.NodeOf(p, n.Parts)
			if !topo.hostsNode(node) {
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				var recvWait int64

				instState := reg.add(n.Name, p)
				ins := make([]*PortReader, len(n.Inputs))
				for i, e := range edges[n] {
					pr := &PortReader{ctx: runCtx, waitNs: &recvWait, state: instState, portIdx: i}
					if e.merged != nil {
						pr.chans = e.merged[p]
						pr.mergeBy = e.spec.SortCols
					} else {
						pr.ch = e.plain[p].ch
					}
					ins[i] = pr
				}
				outs := make([]*Emitter, n.OutPorts)
				for o, e := range outEdges[n] {
					emState := instState
					if n.OutPorts > 1 {
						// Replicate-style ops write ports concurrently;
						// give each emitter its own diagnostic slot.
						emState = reg.add(fmt.Sprintf("%s/out%d", n.Name, o), p)
					}
					em := &Emitter{
						state:         emState,
						ctx:           runCtx,
						spec:          e.spec,
						prodPart:      p,
						prodNode:      node,
						consNodes:     e.consNodes,
						frameSize:     topo.frameSize(),
						netLatency:    topo.NetFrameLatency,
						bufs:          make([][]Tuple, e.consParts),
						bytesShuffled: &bytesShuffled,
						netMessages:   &netMessages,
					}
					if e.senders != nil {
						em.senders = e.senders[p]
					}
					if e.merged != nil {
						em.merged = make([]chan frame, e.consParts)
						for c := 0; c < e.consParts; c++ {
							if e.merged[c] != nil {
								em.merged[c] = e.merged[c][p]
							}
						}
					} else {
						em.plain = e.plain
					}
					outs[o] = em
				}

				t0 := time.Now()
				op := n.Make()
				tc := &TaskCtx{Ctx: runCtx, Part: p, Node: node, Mem: topo.Mem, Spill: topo.Spill}
				err := op.Run(tc, ins, outs)
				// Drain unread input so upstream producers can finish,
				// then close outputs.
				for _, pr := range ins {
					pr.Drain()
				}
				var tuplesOut, sendWait, frames, crossBytes int64
				var remoteF, remoteB int64
				for _, em := range outs {
					em.Close()
					tuplesOut += em.tuplesOut
					sendWait += em.sendWaitNs
					frames += em.framesSent
					crossBytes += em.crossBytes
					remoteF += em.remoteFrames
					remoteB += em.remoteBytesN
					if err == nil && em.sendErr != nil {
						err = em.sendErr
					}
				}
				var tuplesIn int64
				for _, pr := range ins {
					tuplesIn += pr.tuplesIn
				}
				if frames > remoteF {
					inprocFrames.Add(frames - remoteF)
				}
				if crossBytes > remoteB {
					inprocBytes.Add(crossBytes - remoteB)
				}
				if remoteF > 0 {
					remoteFrames.Add(remoteF)
					remoteBytes.Add(remoteB)
				}
				instState.finish()
				wall := time.Since(t0).Nanoseconds()
				busy := wall - recvWait - sendWait
				if busy < 0 {
					busy = 0
				}
				statsMu.Lock()
				perNodeBusy[node] += busy
				perNodeTuples[node] += tuplesOut
				agg := &opAgg[n.ID]
				agg.Instances++
				agg.TuplesIn += tuplesIn
				agg.TuplesOut += tuplesOut
				agg.BusyNs += busy
				agg.FramesSent += frames
				agg.BytesMoved += crossBytes
				agg.SpillRuns += tc.SpillRuns
				agg.SpilledBytes += tc.SpilledBytes
				if wall > agg.WallNs {
					agg.WallNs = wall
				}
				if topo.CollectSpans {
					spans = append(spans, obs.OpSpan{
						Op: n.Name, Part: p, Node: node,
						WallNs: wall, BusyNs: busy,
						TuplesIn: tuplesIn, TuplesOut: tuplesOut,
						FramesSent: frames, BytesMoved: crossBytes,
						SpillRuns: tc.SpillRuns, SpilledBytes: tc.SpilledBytes,
					})
				}
				statsMu.Unlock()
				topo.Trace.SpanAtOn(topo.TraceParent, n.Name, trace.CatOperator,
					node, p, t0, time.Duration(wall),
					trace.I("busy_ns", busy),
					trace.I("tuples_in", tuplesIn),
					trace.I("tuples_out", tuplesOut),
				)
				if err != nil {
					fail(fmt.Errorf("%s[%d]: %w", n.Name, p, err))
				}
			}()
		}
	}
	wg.Wait()

	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	stats := &JobStats{
		WallNs:        time.Since(start).Nanoseconds(),
		PerNodeBusyNs: perNodeBusy,
		PerNodeTuples: perNodeTuples,
		BytesShuffled: bytesShuffled.Load(),
		NetMessages:   netMessages.Load(),
		Spans:         spans,
	}
	for _, n := range job.nodes {
		st := opAgg[n.ID]
		st.Name = n.Name
		stats.Ops = append(stats.Ops, st)
	}
	return stats, firstErr
}

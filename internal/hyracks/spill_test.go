package hyracks

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"simdb/internal/adm"
	"simdb/internal/storage"
)

// runBudgeted executes a job under the given per-query budget (0 =
// unlimited) with a temp spill store, returning the job stats and the
// accountant (nil when unbudgeted).
func runBudgeted(t *testing.T, job *Job, budget int64) (*JobStats, *MemoryAccountant) {
	t.Helper()
	topo := Topology{Partitions: 1, PartsPerNode: 1}
	var acct *MemoryAccountant
	if budget > 0 {
		acct = NewMemoryAccountant(budget)
		spill := storage.NewRunFileManager(filepath.Join(t.TempDir(), "spill"))
		defer spill.Close()
		topo.Mem = acct
		topo.Spill = spill
	}
	stats, err := Run(context.Background(), job, topo)
	if err != nil {
		t.Fatal(err)
	}
	return stats, acct
}

// payload pads tuples so modest row counts exceed small budgets.
func payload(r *rand.Rand) adm.Value {
	return adm.NewString(strings.Repeat("x", 40+r.Intn(40)))
}

func encodeRows(ts []Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		var b []byte
		for _, v := range t {
			b = adm.Append(b, v)
		}
		out[i] = string(b)
	}
	return out
}

func sameSequence(t *testing.T, name string, got, want []Tuple) {
	t.Helper()
	g, w := encodeRows(got), encodeRows(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, want %d", name, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d differs from in-memory result", name, i)
		}
	}
}

func sameMultiset(t *testing.T, name string, got, want []Tuple) {
	t.Helper()
	g, w := encodeRows(got), encodeRows(want)
	sort.Strings(g)
	sort.Strings(w)
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, want %d", name, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: multiset differs at %d", name, i)
		}
	}
}

// sortInput builds (key, seq, pad) tuples; seq is the arrival index so
// exact-sequence comparison against the in-memory sort also verifies
// stability on duplicate keys.
func sortInput(kind string, n int) []Tuple {
	r := rand.New(rand.NewSource(7))
	ts := make([]Tuple, n)
	for i := 0; i < n; i++ {
		var key int64
		switch kind {
		case "dup-heavy":
			key = int64(r.Intn(5))
		case "pre-sorted":
			key = int64(i)
		case "reverse":
			key = int64(n - i)
		default:
			key = int64(r.Intn(n * 10))
		}
		ts[i] = Tuple{adm.NewInt(key), adm.NewInt(int64(i)), payload(r)}
	}
	return ts
}

func tupleSource(ts []Tuple) func() Operator {
	return SourceFunc(func(ctx *TaskCtx, emit func(Tuple)) error {
		for _, t := range ts {
			emit(t)
		}
		return nil
	})
}

func sortJob(input []Tuple) (*Job, *Collector) {
	job := &Job{}
	src := job.Add("Src", 1, tupleSource(input))
	srt := job.Add("Sort", 1, Sort([]SortCol{{Col: 0}}),
		Input{From: src, Conn: ConnectorSpec{Type: OneToOne}})
	var c Collector
	MakeSink(job, "Sink", &c, Input{From: srt, Conn: ConnectorSpec{Type: GatherOne}})
	return job, &c
}

func TestExternalSortMatchesInMemory(t *testing.T) {
	for _, kind := range []string{"random", "dup-heavy", "pre-sorted", "reverse"} {
		for _, budget := range []int64{64 << 10, 256 << 10, 8 << 20} {
			t.Run(fmt.Sprintf("%s-%dk", kind, budget>>10), func(t *testing.T) {
				input := sortInput(kind, 3000)
				refJob, refC := sortJob(input)
				runBudgeted(t, refJob, 0)

				job, c := sortJob(input)
				stats, acct := runBudgeted(t, job, budget)
				sameSequence(t, kind, c.Tuples, refC.Tuples)
				runs, bytes := stats.SpillTotals()
				if budget <= 256<<10 {
					if runs == 0 || bytes == 0 {
						t.Fatalf("tight budget did not spill (runs=%d bytes=%d)", runs, bytes)
					}
				} else if runs != 0 {
					t.Fatalf("generous budget spilled %d runs", runs)
				}
				if acct.Used() != 0 {
					t.Fatalf("leaked %d reserved bytes", acct.Used())
				}
				if budget >= 256<<10 && acct.HighWater() > budget {
					t.Fatalf("high water %d exceeds budget %d", acct.HighWater(), budget)
				}
			})
		}
	}
}

func groupJob(input []Tuple) (*Job, *Collector) {
	job := &Job{}
	src := job.Add("Src", 1, tupleSource(input))
	grp := job.Add("HashGroup", 1, HashGroup([]int{0}, []AggSpec{
		{Kind: AggCount},
		{Kind: AggSum, In: 1},
		{Kind: AggMin, In: 1},
		{Kind: AggMax, In: 1},
		{Kind: AggAvg, In: 1},
		{Kind: AggListify, In: 1},
		{Kind: AggFirst, In: 2},
	}), Input{From: src, Conn: ConnectorSpec{Type: OneToOne}})
	var c Collector
	MakeSink(job, "Sink", &c, Input{From: grp, Conn: ConnectorSpec{Type: GatherOne}})
	return job, &c
}

func TestHashGroupSpillMatchesInMemory(t *testing.T) {
	for _, kind := range []string{"many-keys", "dup-heavy"} {
		for _, budget := range []int64{64 << 10, 256 << 10, 8 << 20} {
			t.Run(fmt.Sprintf("%s-%dk", kind, budget>>10), func(t *testing.T) {
				r := rand.New(rand.NewSource(11))
				nKeys := 700
				if kind == "dup-heavy" {
					nKeys = 3
				}
				var input []Tuple
				for i := 0; i < 4000; i++ {
					input = append(input, Tuple{
						adm.NewInt(int64(r.Intn(nKeys))),
						adm.NewInt(int64(i)),
						payload(r),
					})
				}
				refJob, refC := groupJob(input)
				runBudgeted(t, refJob, 0)
				job, c := groupJob(input)
				stats, acct := runBudgeted(t, job, budget)
				// Group output order is hash-table iteration order, which
				// legitimately differs once partitions spill; the rows
				// themselves (including listify element ORDER) must match.
				sameMultiset(t, kind, c.Tuples, refC.Tuples)
				if runs, _ := stats.SpillTotals(); budget == 64<<10 && runs == 0 {
					t.Fatal("tight budget did not spill")
				}
				if acct.Used() != 0 {
					t.Fatalf("leaked %d reserved bytes", acct.Used())
				}
			})
		}
	}
}

func joinJob(build, probe []Tuple) (*Job, *Collector) {
	job := &Job{}
	b := job.Add("Build", 1, tupleSource(build))
	p := job.Add("Probe", 1, tupleSource(probe))
	j := job.Add("HashJoin", 1, HashJoin([]int{0}, []int{0}),
		Input{From: b, Conn: ConnectorSpec{Type: OneToOne}},
		Input{From: p, Conn: ConnectorSpec{Type: OneToOne}})
	var c Collector
	MakeSink(job, "Sink", &c, Input{From: j, Conn: ConnectorSpec{Type: GatherOne}})
	return job, &c
}

func TestHashJoinSpillMatchesInMemory(t *testing.T) {
	for _, kind := range []string{"spread", "one-giant-key"} {
		for _, budget := range []int64{64 << 10, 256 << 10, 8 << 20} {
			t.Run(fmt.Sprintf("%s-%dk", kind, budget>>10), func(t *testing.T) {
				r := rand.New(rand.NewSource(13))
				var build, probe []Tuple
				if kind == "one-giant-key" {
					// Hashing cannot split one key: forces the depth cap and
					// the block-nested-loop fallback.
					for i := 0; i < 400; i++ {
						build = append(build, Tuple{adm.NewInt(1), adm.NewInt(int64(i)), payload(r)})
					}
					for i := 0; i < 150; i++ {
						probe = append(probe, Tuple{adm.NewInt(1), adm.NewInt(int64(1000 + i))})
					}
				} else {
					for i := 0; i < 2500; i++ {
						build = append(build, Tuple{adm.NewInt(int64(r.Intn(500))), adm.NewInt(int64(i)), payload(r)})
					}
					for i := 0; i < 2500; i++ {
						key := adm.NewInt(int64(r.Intn(500)))
						if i%97 == 0 {
							key = adm.Null // null keys never match
						}
						probe = append(probe, Tuple{key, adm.NewInt(int64(10000 + i))})
					}
				}
				refJob, refC := joinJob(build, probe)
				runBudgeted(t, refJob, 0)
				job, c := joinJob(build, probe)
				stats, acct := runBudgeted(t, job, budget)
				sameMultiset(t, kind, c.Tuples, refC.Tuples)
				if runs, _ := stats.SpillTotals(); budget == 64<<10 && runs == 0 {
					t.Fatal("tight budget did not spill")
				}
				if acct.Used() != 0 {
					t.Fatalf("leaked %d reserved bytes", acct.Used())
				}
			})
		}
	}
}

func TestNestedLoopJoinSpillMatchesInMemory(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	var build, probe []Tuple
	for i := 0; i < 800; i++ {
		build = append(build, Tuple{adm.NewInt(int64(i % 40)), payload(r)})
	}
	for i := 0; i < 500; i++ {
		probe = append(probe, Tuple{adm.NewInt(int64(i % 40))})
	}
	pred := func() func(b, p Tuple) (bool, error) {
		return func(b, p Tuple) (bool, error) { return b[0].Int() == p[0].Int(), nil }
	}
	mk := func() (*Job, *Collector) {
		job := &Job{}
		bn := job.Add("Build", 1, tupleSource(build))
		pn := job.Add("Probe", 1, tupleSource(probe))
		j := job.Add("NLJ", 1, NestedLoopJoin(pred),
			Input{From: bn, Conn: ConnectorSpec{Type: OneToOne}},
			Input{From: pn, Conn: ConnectorSpec{Type: OneToOne}})
		var c Collector
		MakeSink(job, "Sink", &c, Input{From: j, Conn: ConnectorSpec{Type: GatherOne}})
		return job, &c
	}
	refJob, refC := mk()
	runBudgeted(t, refJob, 0)
	for _, budget := range []int64{64 << 10, 8 << 20} {
		job, c := mk()
		stats, _ := runBudgeted(t, job, budget)
		if budget == 8<<20 {
			// Unspilled path preserves the legacy probe-major order.
			sameSequence(t, "nlj-generous", c.Tuples, refC.Tuples)
		} else {
			sameMultiset(t, "nlj-tight", c.Tuples, refC.Tuples)
			if runs, _ := stats.SpillTotals(); runs == 0 {
				t.Fatal("tight budget did not spill")
			}
		}
	}
}

func TestMaterializeAndReplicateSpill(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	var input []Tuple
	for i := 0; i < 2000; i++ {
		input = append(input, Tuple{adm.NewInt(int64(i)), payload(r)})
	}
	for _, budget := range []int64{64 << 10, 8 << 20} {
		// Materialize must replay exactly the arrival order.
		job := &Job{}
		src := job.Add("Src", 1, tupleSource(input))
		mat := job.Add("Materialize", 1, Materialize(),
			Input{From: src, Conn: ConnectorSpec{Type: OneToOne}})
		var c Collector
		MakeSink(job, "Sink", &c, Input{From: mat, Conn: ConnectorSpec{Type: GatherOne}})
		stats, _ := runBudgeted(t, job, budget)
		sameSequence(t, "materialize", c.Tuples, input)
		if runs, _ := stats.SpillTotals(); budget == 64<<10 && runs == 0 {
			t.Fatal("materialize did not spill under tight budget")
		}

		// Replicate: every port sees the full buffer in arrival order.
		job2 := &Job{}
		src2 := job2.Add("Src", 1, tupleSource(input))
		rep := job2.Add("Replicate", 1, Replicate(2),
			Input{From: src2, Conn: ConnectorSpec{Type: OneToOne}})
		rep.OutPorts = 2
		var c0, c1 Collector
		s0 := job2.Add("Sink0", 1, c0.Op(), Input{From: rep, FromPort: 0, Conn: ConnectorSpec{Type: GatherOne}})
		s0.OutPorts = 0
		s1 := job2.Add("Sink1", 1, c1.Op(), Input{From: rep, FromPort: 1, Conn: ConnectorSpec{Type: GatherOne}})
		s1.OutPorts = 0
		runBudgeted(t, job2, budget)
		sameSequence(t, "replicate-port0", c0.Tuples, input)
		sameSequence(t, "replicate-port1", c1.Tuples, input)
	}
}

func TestAccountantForceAndHighWater(t *testing.T) {
	a := NewMemoryAccountant(1)
	if a.Budget() != MinQueryMemory {
		t.Fatalf("tiny budget not clamped: %d", a.Budget())
	}
	if NewMemoryAccountant(0) != nil || NewMemoryAccountant(-5) != nil {
		t.Fatal("non-positive budgets must disable accounting")
	}
	ctx := &TaskCtx{Mem: a}
	g := ctx.Grant()
	if !g.Reserve(MinQueryMemory) {
		t.Fatal("reserve within budget failed")
	}
	if g.Reserve(1) {
		t.Fatal("reserve past budget succeeded")
	}
	g.Force(100)
	if a.ForcedBytes() != 100 {
		t.Fatalf("forced = %d", a.ForcedBytes())
	}
	if a.HighWater() != MinQueryMemory+100 {
		t.Fatalf("high water = %d", a.HighWater())
	}
	g.ReleaseAll()
	if a.Used() != 0 || g.Held() != 0 {
		t.Fatalf("release-all left used=%d held=%d", a.Used(), g.Held())
	}
	// Nil-accountant grants are unlimited no-ops.
	var nilCtx TaskCtx
	ng := nilCtx.Grant()
	if !ng.Reserve(1 << 60) {
		t.Fatal("nil accountant must accept any reservation")
	}
	ng.ReleaseAll()
}

package adm

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestOrderedKeyScalarOrderProperty(t *testing.T) {
	// For scalar values, byte order of OrderedKey must equal Compare.
	r := rand.New(rand.NewSource(21))
	randScalar := func() Value {
		switch r.Intn(5) {
		case 0:
			return Null
		case 1:
			return NewBool(r.Intn(2) == 0)
		case 2:
			return NewInt(int64(r.Intn(4001) - 2000))
		case 3:
			return NewDouble(r.NormFloat64() * 50)
		default:
			n := r.Intn(8)
			b := make([]byte, n)
			for i := range b {
				// Include NUL bytes to exercise the escaping.
				b[i] = byte(r.Intn(4)) * byte(r.Intn(64))
			}
			return NewString(string(b))
		}
	}
	for i := 0; i < 3000; i++ {
		a, b := randScalar(), randScalar()
		ka, kb := OrderedKey(a), OrderedKey(b)
		want := Compare(a, b)
		got := bytes.Compare(ka, kb)
		if sign(got) != sign(want) {
			t.Fatalf("OrderedKey order mismatch: Compare(%v, %v)=%d but bytes.Compare=%d", a, b, want, got)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestOrderedKeyStringPrefix(t *testing.T) {
	// "a" must sort before "ab"; "a\x00b" after "a".
	cases := [][2]string{
		{"a", "ab"},
		{"a", "a\x00b"},
		{"", "a"},
		{"ab", "b"},
	}
	for _, c := range cases {
		ka := OrderedKey(NewString(c[0]))
		kb := OrderedKey(NewString(c[1]))
		if bytes.Compare(ka, kb) >= 0 {
			t.Errorf("OrderedKey(%q) should sort before OrderedKey(%q)", c[0], c[1])
		}
	}
}

func TestOrderedKeyCompositeConcatenation(t *testing.T) {
	// Concatenating (token, pk) ordered keys groups by token: every key
	// of token "ab" sorts between "aa..." and "ac...".
	key := func(tok string, pk int64) []byte {
		k := AppendOrderedKey(nil, NewString(tok))
		return AppendOrderedKey(k, NewInt(pk))
	}
	low := key("aa", 999)
	mid1 := key("ab", 1)
	mid2 := key("ab", 500)
	high := key("ac", 0)
	if !(bytes.Compare(low, mid1) < 0 && bytes.Compare(mid1, mid2) < 0 && bytes.Compare(mid2, high) < 0) {
		t.Error("composite ordered keys not grouped by leading token")
	}
}

func TestOrderedKeyEqualValuesEncodeEqually(t *testing.T) {
	a := NewBag([]Value{NewInt(1), NewInt(2)})
	b := NewBag([]Value{NewInt(2), NewInt(1)})
	if !bytes.Equal(OrderedKey(a), OrderedKey(b)) {
		t.Error("equal bags should have equal ordered keys")
	}
	r1 := EmptyRecord(2)
	r1.Set("x", NewInt(1))
	r1.Set("y", NewInt(2))
	r2 := EmptyRecord(2)
	r2.Set("y", NewInt(2))
	r2.Set("x", NewInt(1))
	if !bytes.Equal(OrderedKey(NewRecord(r1)), OrderedKey(NewRecord(r2))) {
		t.Error("equal records should have equal ordered keys")
	}
	if bytes.Equal(OrderedKey(NewInt(1)), OrderedKey(NewInt(2))) {
		t.Error("distinct values should differ")
	}
}

package storage

import (
	"container/list"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// BufferCache is a node-wide LRU page cache. All component files of all
// partitions on a node read their data pages through one cache, like
// AsterixDB's per-node disk buffer cache (Table 2: "Disk buffer cache
// size"). Thread safe.
type BufferCache struct {
	pageSize int
	capacity int // in pages

	mu      sync.Mutex
	entries map[pageKey]*list.Element
	lru     *list.List // front = most recently used

	hits      atomic.Int64
	misses    atomic.Int64
	pagesRead atomic.Int64
	evictions atomic.Int64
}

type pageKey struct {
	fileID uint64
	pageNo uint32
	// tag distinguishes derived views of the same region: "" for the
	// raw bytes or the full built page, a projection signature for a
	// projected build (see ReadBuiltTagged).
	tag string
}

type cacheEntry struct {
	key  pageKey
	data []byte
}

// NewBufferCache creates a cache of capacityBytes total with the given
// page size.
func NewBufferCache(capacityBytes, pageSize int) *BufferCache {
	pages := capacityBytes / pageSize
	if pages < 4 {
		pages = 4
	}
	return &BufferCache{
		pageSize: pageSize,
		capacity: pages,
		entries:  make(map[pageKey]*list.Element),
		lru:      list.New(),
	}
}

// PageSize returns the cache's page size.
func (c *BufferCache) PageSize() int { return c.pageSize }

// ReadRegion returns bytes [off, off+length) of the reader identified
// by fileID, fetched through the cache and keyed by the region ordinal
// regionNo (component data pages are variable-length regions of
// roughly one page each, so one region ≈ one cache page). The returned
// slice is shared — callers must not modify it.
func (c *BufferCache) ReadRegion(fileID uint64, r io.ReaderAt, regionNo uint32, off int64, length int) ([]byte, error) {
	key := pageKey{fileID: fileID, pageNo: regionNo}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		c.hits.Add(1)
		return data, nil
	}
	c.mu.Unlock()
	c.misses.Add(1)

	data := make([]byte, length)
	n, err := r.ReadAt(data, off)
	if err != nil && !(err == io.EOF && n == length) {
		return nil, fmt.Errorf("storage: read region %d of file %d: %w", regionNo, fileID, err)
	}
	c.pagesRead.Add(1)

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// Raced with another reader; keep the resident copy.
		c.lru.MoveToFront(el)
		data = el.Value.(*cacheEntry).data
		c.mu.Unlock()
		return data, nil
	}
	el := c.lru.PushFront(&cacheEntry{key: key, data: data})
	c.entries[key] = el
	for c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	return data, nil
}

// ReadBuilt is ReadRegion for derived pages: on miss it calls build to
// produce the bytes (e.g. materializing a columnar row group into a
// page image) and caches the result under (fileID, regionNo), so
// repeated reads of the same group skip both the disk and the
// reassembly. The returned slice is shared — callers must not modify
// it.
func (c *BufferCache) ReadBuilt(fileID uint64, regionNo uint32, build func() ([]byte, error)) ([]byte, error) {
	return c.ReadBuiltTagged(fileID, regionNo, "", build)
}

// ReadBuiltTagged is ReadBuilt with an extra cache-key tag, so several
// derived views of one region — the full built page and per-projection
// partial pages — can be resident at once without colliding. Repeated
// projected scans of a columnar group then skip both the block reads
// and the reassembly, the same way full scans do.
func (c *BufferCache) ReadBuiltTagged(fileID uint64, regionNo uint32, tag string, build func() ([]byte, error)) ([]byte, error) {
	key := pageKey{fileID: fileID, pageNo: regionNo, tag: tag}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		c.hits.Add(1)
		return data, nil
	}
	c.mu.Unlock()
	c.misses.Add(1)

	data, err := build()
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// Raced with another reader; keep the resident copy.
		c.lru.MoveToFront(el)
		data = el.Value.(*cacheEntry).data
		c.mu.Unlock()
		return data, nil
	}
	el := c.lru.PushFront(&cacheEntry{key: key, data: data})
	c.entries[key] = el
	for c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	return data, nil
}

// Evict drops every cached page of fileID (called when a component file
// is deleted after compaction).
func (c *BufferCache) Evict(fileID uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.entries {
		if key.fileID == fileID {
			c.lru.Remove(el)
			delete(c.entries, key)
		}
	}
}

// CacheStats is a point-in-time snapshot of cache counters.
type CacheStats struct {
	Hits      int64
	Misses    int64
	PagesRead int64
	// Evictions counts pages pushed out by capacity pressure (targeted
	// Evict() calls after compaction are not included).
	Evictions int64
}

// Stats returns the current counters.
func (c *BufferCache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		PagesRead: c.pagesRead.Load(),
		Evictions: c.evictions.Load(),
	}
}

// nextFileID hands out process-unique file ids for cache keying.
var nextFileID atomic.Uint64

// NewFileID returns a process-unique id for keying cached pages.
func NewFileID() uint64 { return nextFileID.Add(1) }

type corruptError string

func errCorrupt(what string) error { return corruptError(what) }

func (e corruptError) Error() string { return "storage: corrupt component: " + string(e) }

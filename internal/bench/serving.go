package bench

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"simdb/internal/adm"
	"simdb/internal/core"
	"simdb/internal/datagen"
	"simdb/internal/obs"
)

// ServingQuery is one weighted entry in a load mix: requests are drawn
// from the mix proportionally to Weight, cycling through Statements.
type ServingQuery struct {
	Name       string
	Weight     int
	Statements []string
}

// ServingLoadOptions configures one open-loop load phase against a
// running simdbd endpoint.
type ServingLoadOptions struct {
	// Rate is the offered arrival rate in requests/sec. Arrivals fire on
	// their own schedule whether or not earlier requests finished —
	// open-loop, so server slowdown shows up as latency and rejections
	// instead of silently throttling the generator.
	Rate float64
	// Duration bounds the arrival schedule.
	Duration time.Duration
	// Mix is the weighted query mix; empty is an error.
	Mix []ServingQuery
	// Sessions are server-issued session tokens spread round-robin over
	// requests; empty runs every request sessionless.
	Sessions []string
}

// ServingLoadResult aggregates one load phase.
type ServingLoadResult struct {
	Offered     int64 `json:"offered"`
	Completed   int64 `json:"completed"`
	OK          int64 `json:"ok"`
	Rejected503 int64 `json:"rejected_503"`
	Timeout504  int64 `json:"timeout_504"`
	Client4xx   int64 `json:"client_4xx"`
	OtherErrors int64 `json:"other_errors"`
	// SampleError keeps the first transport/protocol error verbatim so a
	// nonzero OtherErrors count is diagnosable from the report alone.
	SampleError  string  `json:"sample_error,omitempty"`
	RowsStreamed int64   `json:"rows_streamed"`
	WallMs       float64 `json:"wall_ms"`
	AchievedQPS  float64 `json:"achieved_qps"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
}

// RunServingLoad drives one open-loop load phase against the simdbd
// server at base (e.g. "http://127.0.0.1:8095"). Latency quantiles
// cover successful requests, first byte to stream end inclusive.
func RunServingLoad(base string, opt ServingLoadOptions) (ServingLoadResult, error) {
	if opt.Rate <= 0 || opt.Duration <= 0 {
		return ServingLoadResult{}, fmt.Errorf("bench: serving load needs a positive rate and duration")
	}
	var pool []ServingQuery
	for _, q := range opt.Mix {
		if len(q.Statements) == 0 {
			continue
		}
		w := q.Weight
		if w <= 0 {
			w = 1
		}
		for i := 0; i < w; i++ {
			pool = append(pool, q)
		}
	}
	if len(pool) == 0 {
		return ServingLoadResult{}, fmt.Errorf("bench: serving load mix is empty")
	}

	var res ServingLoadResult
	var sampleMu sync.Mutex
	sampleErr := func(err error) {
		sampleMu.Lock()
		if res.SampleError == "" {
			res.SampleError = err.Error()
		}
		sampleMu.Unlock()
	}
	hist := obs.NewHistogram()
	// Open-loop queues drain well past the arrival window; the client
	// timeout only guards against a hung server, not against queueing.
	client := &http.Client{Timeout: opt.Duration + 60*time.Second}
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / opt.Rate)
	start := time.Now()
	for i := 0; ; i++ {
		at := start.Add(time.Duration(i) * interval)
		if at.Sub(start) >= opt.Duration {
			break
		}
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		atomic.AddInt64(&res.Offered, 1)
		q := pool[i%len(pool)]
		stmt := q.Statements[(i/len(pool))%len(q.Statements)]
		session := ""
		if len(opt.Sessions) > 0 {
			session = opt.Sessions[i%len(opt.Sessions)]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			status, rows, termErr, err := servingRequest(client, base, session, stmt)
			atomic.AddInt64(&res.Completed, 1)
			atomic.AddInt64(&res.RowsStreamed, rows)
			switch {
			case err != nil:
				atomic.AddInt64(&res.OtherErrors, 1)
				sampleErr(err)
			case status == http.StatusServiceUnavailable:
				atomic.AddInt64(&res.Rejected503, 1)
			case status == http.StatusGatewayTimeout || termErr == "query-timeout":
				atomic.AddInt64(&res.Timeout504, 1)
			case status >= 400 && status < 500:
				atomic.AddInt64(&res.Client4xx, 1)
			case status == http.StatusOK && termErr == "":
				atomic.AddInt64(&res.OK, 1)
				hist.Observe(time.Since(t0).Nanoseconds())
			default:
				atomic.AddInt64(&res.OtherErrors, 1)
				sampleErr(fmt.Errorf("status %d (stream error %q)", status, termErr))
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	res.WallMs = float64(wall.Microseconds()) / 1000
	res.AchievedQPS = float64(res.OK) / wall.Seconds()
	snap := hist.Snapshot()
	res.P50Ms = float64(snap.P50) / 1e6
	res.P95Ms = float64(snap.P95) / 1e6
	res.P99Ms = float64(snap.P99) / 1e6
	res.MaxMs = float64(snap.Max) / 1e6
	return res, nil
}

// servingRequest runs one request and drains its NDJSON stream,
// returning the HTTP status, streamed row count, and the terminal error
// code if the stream ended in an error record.
//
// Connection-level failures before any response byte (EOF/reset from a
// keep-alive socket closing under thousands of conns/sec of churn)
// retry up to twice: the mix is read-only and the server never saw the
// request, so a replay cannot double-execute anything. Failures after
// the response starts are never retried.
func servingRequest(client *http.Client, base, session, stmt string) (status int, rows int64, termErr string, err error) {
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		var req *http.Request
		req, err = http.NewRequest("POST", base+"/query", strings.NewReader(stmt))
		if err != nil {
			return 0, 0, "", err
		}
		req.Header.Set("Content-Type", "text/plain")
		// Also opt into net/http's own replay of requests whose reused
		// connection died (the transport only retries requests it may
		// treat as idempotent).
		req.Header.Set("X-Idempotency-Key", "simdb-serving-load")
		if session != "" {
			req.Header.Set("X-SimDB-Session", session)
		}
		resp, err = client.Do(req)
		if err == nil {
			break
		}
		if attempt >= 2 || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return 0, 0, "", err
		}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, 0, "", nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 8<<20)
	var rec struct {
		Row     json.RawMessage `json:"row"`
		Summary json.RawMessage `json:"summary"`
		Error   *struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec.Row, rec.Summary, rec.Error = nil, nil, nil
		if jerr := json.Unmarshal(line, &rec); jerr != nil {
			return resp.StatusCode, rows, "", jerr
		}
		switch {
		case rec.Error != nil:
			termErr = rec.Error.Code
		case rec.Summary == nil:
			rows++
		}
	}
	return resp.StatusCode, rows, termErr, sc.Err()
}

// ServingCell is one measured point of the serving experiment: a
// client-session count with its offered open-loop rate.
type ServingCell struct {
	Clients int     `json:"clients"`
	RateQPS float64 `json:"offered_qps"`
	ServingLoadResult
}

// ServingReport is the JSON emitted as BENCH_serving.json.
type ServingReport struct {
	Experiment       string        `json:"experiment"`
	Scale            int           `json:"scale"`
	Nodes            int           `json:"nodes"`
	MaxConcurrent    int           `json:"max_concurrent_queries"`
	AdmissionTimeout string        `json:"admission_timeout"`
	Cells            []ServingCell `json:"cells"`
	// Metrics is the process-wide snapshot after the last cell — the
	// simdbd.http.* serving counters land here alongside engine totals.
	Metrics obs.Snapshot `json:"metrics"`
}

// Serving measures the HTTP serving front end under open-loop load:
// an in-process simdbd server over an Amazon dataset, driven at rising
// session counts and offered rates through the real wire protocol
// (sessions, NDJSON streaming, admission rejections as 503s). The top
// cell deliberately offers more than the admission pool sustains, so
// the report shows rejections instead of unbounded queue growth.
// Results go to BENCH_serving.json under Env.ReportDir.
func (e *Env) Serving() error {
	e.logf("\n=== Serving: open-loop HTTP load over simdbd ===\n")
	const maxConcurrent = 8
	admissionTimeout := 250 * time.Millisecond
	dir := filepath.Join(e.Dir, "serving")
	db, err := core.Open(core.Config{
		DataDir:              dir,
		NumNodes:             e.Nodes,
		PartitionsPerNode:    e.PartsPerNode,
		ServeAddr:            "127.0.0.1:0",
		MaxConcurrentQueries: maxConcurrent,
		AdmissionTimeout:     admissionTimeout,
		QueryTimeout:         30 * time.Second,
	})
	if err != nil {
		return err
	}
	defer func() {
		db.Close()
		os.RemoveAll(dir)
	}()
	base := "http://" + db.ServeAddr()

	n := e.Scale
	name := datasetName(datagen.Amazon)
	jf, ef, err := datagen.Fields(datagen.Amazon)
	if err != nil {
		return err
	}
	if _, err := db.Query(fmt.Sprintf("create dataset %s primary key id;", name)); err != nil {
		return err
	}
	batch := make([]adm.Value, 0, 512)
	var jvals, evals []string
	if err := datagen.Generate(datagen.Amazon, n, datagen.Options{Seed: 7}, func(v adm.Value) error {
		if len(jvals) < 64 {
			if f, ok := v.Rec().Get(jf); ok {
				jvals = append(jvals, f.Str())
			}
			if f, ok := v.Rec().Get(ef); ok {
				evals = append(evals, f.Str())
			}
		}
		batch = append(batch, v)
		if len(batch) == 512 {
			err := db.InsertBatch(name, batch)
			batch = batch[:0]
			return err
		}
		return nil
	}); err != nil {
		return err
	}
	if len(batch) > 0 {
		if err := db.InsertBatch(name, batch); err != nil {
			return err
		}
	}
	for _, ddl := range []string{
		fmt.Sprintf("create index srv_kw on %s(%s) type keyword;", name, jf),
		fmt.Sprintf("create index srv_ng on %s(%s) type ngram(2);", name, ef),
	} {
		if _, err := db.Query(ddl); err != nil && !strings.Contains(err.Error(), "exists") {
			return err
		}
	}

	mix := servingMix(name, jf, ef, jvals, evals)
	report := ServingReport{
		Experiment:       "serving",
		Scale:            n,
		Nodes:            e.Nodes,
		MaxConcurrent:    maxConcurrent,
		AdmissionTimeout: admissionTimeout.String(),
	}
	e.logf("%8s %10s %10s %8s %8s %8s %9s %9s %9s\n",
		"clients", "offered", "ok/s", "503s", "504s", "errs", "p50(ms)", "p95(ms)", "p99(ms)")
	for _, clients := range []int{4, 16, 64} {
		sessions := make([]string, clients)
		for i := range sessions {
			tok, err := servingSession(base)
			if err != nil {
				return err
			}
			sessions[i] = tok
		}
		// Offered load scales with the session count; the last cell
		// overshoots the admission pool's capacity on purpose.
		opt := ServingLoadOptions{
			Rate:     float64(clients) * 30,
			Duration: 2 * time.Second,
			Mix:      mix,
			Sessions: sessions,
		}
		lr, err := RunServingLoad(base, opt)
		if err != nil {
			return err
		}
		cell := ServingCell{Clients: clients, RateQPS: opt.Rate, ServingLoadResult: lr}
		report.Cells = append(report.Cells, cell)
		e.logf("%8d %10.0f %10.1f %8d %8d %8d %9.2f %9.2f %9.2f\n",
			clients, opt.Rate, lr.AchievedQPS, lr.Rejected503, lr.Timeout504,
			lr.OtherErrors+lr.Client4xx, lr.P50Ms, lr.P95Ms, lr.P99Ms)
	}
	report.Metrics = db.Cluster().Metrics()

	outDir := e.ReportDir
	if outDir == "" {
		outDir = "."
	}
	path := filepath.Join(outDir, "BENCH_serving.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	e.logf("wrote %s\n", path)
	return nil
}

// servingMix builds the default weighted query mix: cheap selections
// dominate, similarity-index searches carry real work, and a heavy
// aggregation occupies admission slots long enough to matter.
func servingMix(name, jf, ef string, jvals, evals []string) []ServingQuery {
	exact := make([]string, 0, len(evals))
	for _, v := range evals {
		exact = append(exact, fmt.Sprintf(
			"count(for $r in dataset %s where $r.%s = '%s' return $r.id)",
			name, ef, quoteAQL(v)))
	}
	jaccard := make([]string, 0, len(jvals))
	for _, v := range jvals {
		jaccard = append(jaccard, fmt.Sprintf(
			`count(for $r in dataset %s
			 where similarity-jaccard(word-tokens($r.%s), word-tokens('%s')) >= 0.8
			 return $r.id)`, name, jf, quoteAQL(v)))
	}
	edit := make([]string, 0, len(evals))
	for _, v := range evals {
		edit = append(edit, fmt.Sprintf(
			`count(for $r in dataset %s
			 where edit-distance($r.%s, '%s') <= 1
			 return $r.id)`, name, ef, quoteAQL(v)))
	}
	heavy := []string{fmt.Sprintf(
		`count(for $r in dataset %s
		 where similarity-jaccard(word-tokens($r.%s), word-tokens('great product quality')) >= 0.3
		 return $r.id)`, name, jf)}
	return []ServingQuery{
		{Name: "exact", Weight: 4, Statements: exact},
		{Name: "jaccard-index", Weight: 3, Statements: jaccard},
		{Name: "edit-distance-index", Weight: 2, Statements: edit},
		{Name: "heavy-scan", Weight: 1, Statements: heavy},
	}
}

// servingSession creates one server-side session for the load phase.
func servingSession(base string) (string, error) {
	resp, err := http.Post(base+"/sessions", "application/json", strings.NewReader("{}"))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("bench: create session: status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.Session, nil
}

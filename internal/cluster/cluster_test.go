package cluster

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"simdb/internal/adm"
	"simdb/internal/optimizer"
)

func newTestCluster(t *testing.T, nodes, partsPerNode int) *Cluster {
	t.Helper()
	c, err := New(Config{NumNodes: nodes, PartitionsPerNode: partsPerNode, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func exec(t *testing.T, c *Cluster, sess *Session, src string) *Result {
	t.Helper()
	res, err := c.Execute(context.Background(), sess, src)
	if err != nil {
		t.Fatalf("Execute(%s): %v", src, err)
	}
	return res
}

func mustErr(t *testing.T, c *Cluster, sess *Session, src string) {
	t.Helper()
	if _, err := c.Execute(context.Background(), sess, src); err == nil {
		t.Fatalf("Execute(%s) should fail", src)
	}
}

// loadReviews populates a small review dataset with usernames and
// summaries modeled on the paper's Figure 1.
func loadReviews(t *testing.T, c *Cluster, sess *Session) {
	t.Helper()
	exec(t, c, sess, `create dataset Reviews primary key id;`)
	rows := []struct {
		id       int64
		username string
		summary  string
	}{
		{1, "james", "This movie touched my heart!"},
		{2, "mary", "The best car charger I ever bought"},
		{3, "mario", "Different than my usual but good"},
		{4, "jamie", "Great Product - Fantastic Gift"},
		{5, "maria", "Better ever than I expected"},
		{6, "marla", "Great product fantastic quality"},
		{7, "johnny", "Best product ever bought"},
		{8, "joanna", "Totally great product works fine"},
	}
	for _, r := range rows {
		rec := adm.EmptyRecord(3)
		rec.Set("id", adm.NewInt(r.id))
		rec.Set("username", adm.NewString(r.username))
		rec.Set("summary", adm.NewString(r.summary))
		if err := c.Insert("Default", "Reviews", adm.NewRecord(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func rowInts(t *testing.T, rows []adm.Value) []int64 {
	t.Helper()
	var out []int64
	for _, r := range rows {
		out = append(out, r.Int())
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestExactMatchSelection(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	sess := NewSession()
	loadReviews(t, c, sess)
	res := exec(t, c, sess, `
		for $r in dataset Reviews
		where $r.username = 'maria'
		return $r.id
	`)
	if got := rowInts(t, res.Rows); fmt.Sprint(got) != "[5]" {
		t.Errorf("rows = %v", got)
	}
}

func TestEditDistanceSelectionScanVsIndex(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	sess := NewSession()
	loadReviews(t, c, sess)
	query := `
		for $r in dataset Reviews
		where edit-distance($r.username, 'marla') <= 1
		return $r.id
	`
	scanRes := exec(t, c, sess, query)
	// Build the 2-gram index, then re-run: identical answers via the
	// index path (the paper's correctness invariant).
	exec(t, c, sess, `create index nix on Reviews(username) type ngram(2);`)
	idxRes := exec(t, c, sess, query)
	want := rowInts(t, scanRes.Rows)
	got := rowInts(t, idxRes.Rows)
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Errorf("index path %v != scan path %v", got, want)
	}
	// marla ~1: maria, marla... dataset has maria(5), mary(2)? ed(mary,marla)=2. Expect {5,6}.
	if fmt.Sprint(got) != "[5 6]" {
		t.Errorf("unexpected answer %v", got)
	}
	if idxRes.Stats.IndexSearches == 0 {
		t.Error("index path did not touch the inverted index")
	}
	if scanRes.Stats.IndexSearches != 0 {
		t.Error("scan path should not search an index")
	}
}

func TestEditDistanceSelectionCornerCaseUsesScan(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	sess := NewSession()
	loadReviews(t, c, sess)
	exec(t, c, sess, `create index nix on Reviews(username) type ngram(2);`)
	// T = (2+2*1) - 2*3 <= 0 for a 2-char string with k=3: corner case,
	// must fall back to a scan and still answer correctly.
	res := exec(t, c, sess, `
		for $r in dataset Reviews
		where edit-distance($r.username, 'ma') <= 3
		return $r.id
	`)
	if res.Stats.IndexSearches != 0 {
		t.Error("corner-case selection must not use the index")
	}
	// Verify against brute force: usernames within ED 3 of "ma".
	want := rowInts(t, exec(t, c, sess, `
		for $r in dataset Reviews
		where edit-distance($r.username, 'ma') <= 3 and $r.id >= 0
		return $r.id
	`).Rows)
	if fmt.Sprint(rowInts(t, res.Rows)) != fmt.Sprint(want) {
		t.Errorf("corner case rows wrong")
	}
	if len(res.Rows) == 0 {
		t.Error("expected some matches (mary, maria, mario, ...)")
	}
}

func TestJaccardSelectionScanVsIndex(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	sess := NewSession()
	loadReviews(t, c, sess)
	query := `
		for $r in dataset Reviews
		where similarity-jaccard(word-tokens($r.summary), word-tokens('great fantastic product')) >= 0.5
		return $r.id
	`
	scanRes := exec(t, c, sess, query)
	exec(t, c, sess, `create index smix on Reviews(summary) type keyword;`)
	idxRes := exec(t, c, sess, query)
	if fmt.Sprint(rowInts(t, scanRes.Rows)) != fmt.Sprint(rowInts(t, idxRes.Rows)) {
		t.Errorf("index %v != scan %v", rowInts(t, idxRes.Rows), rowInts(t, scanRes.Rows))
	}
	if len(idxRes.Rows) == 0 {
		t.Error("expected matches for 'great fantastic product'")
	}
	if idxRes.Stats.CandidatesTotal < int64(len(idxRes.Rows)) {
		t.Error("candidates should be at least the result count")
	}
}

func TestSimilaritySelectionWithTildeOperator(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	sess := NewSession()
	loadReviews(t, c, sess)
	res := exec(t, c, sess, `
		set simfunction 'edit-distance';
		set simthreshold '1';
		for $r in dataset Reviews
		where $r.username ~= 'james'
		return $r.id
	`)
	// jamie is ED 2 from james, so only james itself matches at k=1.
	if got := rowInts(t, res.Rows); fmt.Sprint(got) != "[1]" {
		t.Errorf("~= rows = %v", got)
	}
}

func TestJaccardJoinThreeStageMatchesNL(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	sess := NewSession()
	loadReviews(t, c, sess)
	query := `
		set simfunction 'jaccard';
		set simthreshold '0.5';
		for $a in dataset Reviews
		for $b in dataset Reviews
		where word-tokens($a.summary) ~= word-tokens($b.summary) and $a.id < $b.id
		return { 'l': $a.id, 'r': $b.id }
	`
	pairsOf := func(res *Result) []string {
		var out []string
		for _, r := range res.Rows {
			l, _ := r.Rec().Get("l")
			rr, _ := r.Rec().Get("r")
			out = append(out, fmt.Sprintf("%d-%d", l.Int(), rr.Int()))
		}
		sort.Strings(out)
		return out
	}
	three := exec(t, c, sess, query)

	nlSess := NewSession()
	opts := optimizer.DefaultOptions()
	opts.UseThreeStageJoin = false
	opts.ReuseSubplans = false
	nlSess.Opts = &opts
	nl := exec(t, c, nlSess, query)

	want, got := pairsOf(nl), pairsOf(three)
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Errorf("three-stage %v != NL %v", got, want)
	}
	if len(got) == 0 {
		t.Error("expected at least one similar pair (4 and 6)")
	}
}

func TestJaccardJoinIndexNestedLoop(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	sess := NewSession()
	loadReviews(t, c, sess)
	exec(t, c, sess, `create index smix on Reviews(summary) type keyword;`)
	query := `
		set simfunction 'jaccard';
		set simthreshold '0.5';
		for $a in dataset Reviews
		for $b in dataset Reviews
		where $a.id = 4 and word-tokens($a.summary) ~= word-tokens($b.summary) and $a.id != $b.id
		return $b.id
	`
	res := exec(t, c, sess, query)
	if res.Stats.IndexSearches == 0 {
		t.Fatalf("expected INLJ to use the index; plan:\n%s", res.Stats.LogicalPlan)
	}
	// Record 4 "Great Product - Fantastic Gift" vs 6 "Great product fantastic quality": J = 3/5.
	if got := rowInts(t, res.Rows); fmt.Sprint(got) != "[6]" {
		t.Errorf("INLJ rows = %v", got)
	}

	// Same query without indexes gives the same answer.
	noIdx := NewSession()
	opts := optimizer.DefaultOptions()
	opts.UseIndexes = false
	noIdx.Opts = &opts
	res2 := exec(t, c, noIdx, query)
	if fmt.Sprint(rowInts(t, res2.Rows)) != fmt.Sprint(rowInts(t, res.Rows)) {
		t.Errorf("no-index path differs: %v", rowInts(t, res2.Rows))
	}
}

func TestEditDistanceJoinWithCornerRecords(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	sess := NewSession()
	loadReviews(t, c, sess)
	// A probe dataset with both normal and corner-case (short) names.
	exec(t, c, sess, `create dataset Probes primary key pid;`)
	for i, name := range []string{"maria", "jm"} { // "jm": T<=0 at k=2
		rec := adm.EmptyRecord(2)
		rec.Set("pid", adm.NewInt(int64(i+1)))
		rec.Set("name", adm.NewString(name))
		if err := c.Insert("Default", "Probes", adm.NewRecord(rec)); err != nil {
			t.Fatal(err)
		}
	}
	c.FlushAll()
	query := `
		set simfunction 'edit-distance';
		set simthreshold '2';
		for $p in dataset Probes
		for $r in dataset Reviews
		where $p.name ~= $r.username
		return { 'p': $p.pid, 'r': $r.id }
	`
	// Scan-based reference.
	noIdx := NewSession()
	opts := optimizer.DefaultOptions()
	opts.UseIndexes = false
	noIdx.Opts = &opts
	ref := exec(t, c, noIdx, query)

	exec(t, c, sess, `create index nix on Reviews(username) type ngram(2);`)
	idx := exec(t, c, sess, query)

	key := func(res *Result) []string {
		var out []string
		for _, r := range res.Rows {
			p, _ := r.Rec().Get("p")
			rr, _ := r.Rec().Get("r")
			out = append(out, fmt.Sprintf("%d-%d", p.Int(), rr.Int()))
		}
		sort.Strings(out)
		return out
	}
	want, got := key(ref), key(idx)
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Errorf("corner-case join: index %v != scan %v", got, want)
	}
	// The corner record "jm" must still produce its matches (via the NL
	// path): ed(jm, ...) <= 2 has no 5-char matches, but james? ed=3. So
	// jm may have none; maria must match mario/maria/marla/mary.
	found := false
	for _, k := range got {
		if strings.HasPrefix(k, "1-") {
			found = true
		}
	}
	if !found {
		t.Error("maria probe found no matches")
	}
}

func TestMultiWayJoin(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	sess := NewSession()
	loadReviews(t, c, sess)
	exec(t, c, sess, `create index smix on Reviews(summary) type keyword;`)
	exec(t, c, sess, `create index nix on Reviews(username) type ngram(2);`)
	// Two similarity predicates in one query (paper §6.4.3).
	query := `
		for $a in dataset Reviews
		for $b in dataset Reviews
		where $a.id = 4
		  and similarity-jaccard(word-tokens($a.summary), word-tokens($b.summary)) >= 0.5
		  and edit-distance($a.username, $b.username) <= 4
		  and $a.id != $b.id
		return $b.id
	`
	res := exec(t, c, sess, query)
	// Record 6 (marla) is Jaccard-similar to 4 (jamie); ed(jamie, marla)=4.
	if got := rowInts(t, res.Rows); fmt.Sprint(got) != "[6]" {
		t.Errorf("multi-way rows = %v\nplan:\n%s", got, res.Stats.LogicalPlan)
	}
}

func TestCountAggregate(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	sess := NewSession()
	loadReviews(t, c, sess)
	res := exec(t, c, sess, `
		count(for $r in dataset Reviews return $r.id)
	`)
	if len(res.Rows) != 1 || res.Rows[0].Int() != 8 {
		t.Errorf("count = %v", res.Rows)
	}
}

func TestGroupByTokenFrequency(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	sess := NewSession()
	loadReviews(t, c, sess)
	res := exec(t, c, sess, `
		for $r in dataset Reviews
		for $tok in word-tokens($r.summary)
		/*+ hash */ group by $g := $tok with $r
		where count($r) >= 3
		order by $g
		return { 't': $g, 'n': count($r) }
	`)
	counts := map[string]int64{}
	for _, row := range res.Rows {
		tv, _ := row.Rec().Get("t")
		nv, _ := row.Rec().Get("n")
		counts[tv.Str()] = nv.Int()
	}
	// "product" appears in summaries 4, 6, 7, 8.
	if counts["product"] != 4 {
		t.Errorf("count(product) = %d, want 4; all: %v", counts["product"], counts)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	sess := NewSession()
	loadReviews(t, c, sess)
	res := exec(t, c, sess, `
		for $r in dataset Reviews
		order by $r.id desc
		limit 3
		return $r.id
	`)
	var got []int64
	for _, r := range res.Rows {
		got = append(got, r.Int())
	}
	if fmt.Sprint(got) != "[8 7 6]" {
		t.Errorf("order/limit rows = %v", got)
	}
}

func TestUDF(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	sess := NewSession()
	loadReviews(t, c, sess)
	res := exec(t, c, sess, `
		create function name-sim($x, $y) {
			jaro-winkler($x, $y)
		};
		for $r in dataset Reviews
		where name-sim($r.username, 'marla') >= 0.9
		return $r.id
	`)
	if len(res.Rows) == 0 {
		t.Error("UDF query found nothing")
	}
}

func TestStatementErrors(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	sess := NewSession()
	mustErr(t, c, sess, `use dataverse Nope;`)
	mustErr(t, c, sess, `set nonsense 'x';`)
	mustErr(t, c, sess, `create index i on Missing(f) type keyword;`)
	exec(t, c, sess, `create dataset D primary key id;`)
	mustErr(t, c, sess, `create dataset D primary key id;`)
	mustErr(t, c, sess, `create index i on D(f) type wtf;`)
	mustErr(t, c, sess, `for $x in dataset Missing return $x`)
}

func TestInsertErrors(t *testing.T) {
	c := newTestCluster(t, 1, 1)
	sess := NewSession()
	exec(t, c, sess, `create dataset D primary key id;`)
	// Missing PK.
	rec := adm.EmptyRecord(1)
	rec.Set("x", adm.NewInt(1))
	if err := c.Insert("Default", "D", adm.NewRecord(rec)); err == nil {
		t.Error("missing PK should fail")
	}
	if err := c.Insert("Default", "D", adm.NewInt(3)); err == nil {
		t.Error("non-record insert should fail")
	}
	if err := c.Insert("Default", "Missing", adm.NewRecord(rec)); err == nil {
		t.Error("unknown dataset insert should fail")
	}
}

func TestAutoPK(t *testing.T) {
	c := newTestCluster(t, 1, 2)
	sess := NewSession()
	exec(t, c, sess, `create dataset D primary key id autogenerated;`)
	for i := 0; i < 5; i++ {
		rec := adm.EmptyRecord(1)
		rec.Set("v", adm.NewInt(int64(i)))
		if err := c.Insert("Default", "D", adm.NewRecord(rec)); err != nil {
			t.Fatal(err)
		}
	}
	res := exec(t, c, sess, `count(for $d in dataset D return $d)`)
	if res.Rows[0].Int() != 5 {
		t.Errorf("autopk count = %v", res.Rows)
	}
}

func TestScaleOutDeterminism(t *testing.T) {
	// The same data and query on 1-node and 2-node clusters must agree.
	query := `
		set simfunction 'jaccard';
		set simthreshold '0.5';
		for $a in dataset Reviews
		for $b in dataset Reviews
		where word-tokens($a.summary) ~= word-tokens($b.summary) and $a.id < $b.id
		return { 'l': $a.id, 'r': $b.id }
	`
	results := map[int][]string{}
	for _, nodes := range []int{1, 2} {
		c := newTestCluster(t, nodes, 2)
		sess := NewSession()
		loadReviews(t, c, sess)
		res := exec(t, c, sess, query)
		var keys []string
		for _, r := range res.Rows {
			l, _ := r.Rec().Get("l")
			rr, _ := r.Rec().Get("r")
			keys = append(keys, fmt.Sprintf("%d-%d", l.Int(), rr.Int()))
		}
		sort.Strings(keys)
		results[nodes] = keys
	}
	if fmt.Sprint(results[1]) != fmt.Sprint(results[2]) {
		t.Errorf("1-node %v != 2-node %v", results[1], results[2])
	}
}

func TestQueryStatsPopulated(t *testing.T) {
	c := newTestCluster(t, 2, 1)
	sess := NewSession()
	loadReviews(t, c, sess)
	res := exec(t, c, sess, `count(for $r in dataset Reviews return $r)`)
	s := res.Stats
	if s.ExecNs <= 0 || s.PlanOps <= 0 || s.LogicalPlan == "" {
		t.Errorf("stats incomplete: %+v", s)
	}
	if s.EstimatedParallel <= 0 {
		t.Error("cost model estimate missing")
	}
}

// Package aqlp implements SimDB's query language: the AQL subset the
// paper's queries use (FLWOR expressions, the ~= similarity operator,
// set/use statements, UDFs, compiler hints) plus the AQL+ extensions of
// Section 5.2 — meta variables ($$v), meta clauses (##c), an explicit
// join clause, and union branches — that the optimizer's similarity-join
// rule uses to re-translate plans during rewriting.
package aqlp

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexer token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokVar        // $name
	tokMetaVar    // $$NAME
	tokMetaClause // ##NAME
	tokInt
	tokDouble
	tokString
	tokPunct // ( ) { } [ ] , ; . :
	tokOp    // := = != < <= > >= ~= + - * / %
	tokHint  // /*+ ... */
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset, for error messages
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '/' && l.peekAt(1) == '*' && l.peekAt(2) == '+':
			end := strings.Index(l.src[l.pos:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("aql: unterminated hint at %d", start)
			}
			body := strings.TrimSpace(l.src[l.pos+3 : l.pos+end])
			l.pos += end + 2
			l.toks = append(l.toks, token{tokHint, body, start})
		case c == '$':
			if l.peekAt(1) == '$' {
				l.pos += 2
				name := l.identPlain()
				if name == "" {
					return nil, fmt.Errorf("aql: bad meta variable at %d", start)
				}
				l.toks = append(l.toks, token{tokMetaVar, name, start})
			} else {
				l.pos++
				name := l.identPlain()
				if name == "" {
					return nil, fmt.Errorf("aql: bad variable at %d", start)
				}
				l.toks = append(l.toks, token{tokVar, name, start})
			}
		case c == '#' && l.peekAt(1) == '#':
			l.pos += 2
			name := l.identPlain()
			if name == "" {
				return nil, fmt.Errorf("aql: bad meta clause at %d", start)
			}
			l.toks = append(l.toks, token{tokMetaClause, name, start})
		case c == '\'' || c == '"':
			s, err := l.lexString(c)
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{tokString, s, start})
		case c >= '0' && c <= '9' || (c == '.' && l.peekAt(1) >= '0' && l.peekAt(1) <= '9'):
			l.lexNumber(start)
		case isIdentStart(rune(c)):
			name := l.ident()
			l.toks = append(l.toks, token{tokIdent, name, start})
		default:
			if op := l.lexOperator(); op != "" {
				l.toks = append(l.toks, token{tokOp, op, start})
			} else if strings.ContainsRune("(){}[],;.:", rune(c)) {
				l.pos++
				l.toks = append(l.toks, token{tokPunct, string(c), start})
			} else {
				return nil, fmt.Errorf("aql: unexpected character %q at %d", c, start)
			}
		}
	}
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{k, text, l.pos})
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '/' && l.peekAt(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peekAt(1) == '*' && l.peekAt(2) != '+':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += end + 4
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentCont(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

// ident consumes an identifier; AQL identifiers may contain '-' (e.g.
// word-tokens) but must not end with it followed by a digit start—we
// accept hyphens inside and let the parser sort out function names.
func (l *lexer) ident() string {
	start := l.pos
	for l.pos < len(l.src) {
		r := rune(l.src[l.pos])
		if l.pos == start {
			if !isIdentStart(r) {
				break
			}
		} else if !isIdentCont(r) {
			break
		}
		l.pos++
	}
	// Do not swallow a trailing '-' (it is a minus operator).
	for l.pos > start && l.src[l.pos-1] == '-' {
		l.pos--
	}
	return l.src[start:l.pos]
}

// identPlain consumes a hyphen-free identifier (variable and meta
// names, where '-' must stay a minus operator).
func (l *lexer) identPlain() string {
	start := l.pos
	for l.pos < len(l.src) {
		r := rune(l.src[l.pos])
		if l.pos == start {
			if !isIdentStart(r) {
				break
			}
		} else if !(unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_') {
			break
		}
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexString(quote byte) (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return sb.String(), nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return "", fmt.Errorf("aql: unterminated string at %d", start)
			}
			esc := l.src[l.pos]
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '\'', '"':
				sb.WriteByte(esc)
			default:
				return "", fmt.Errorf("aql: bad escape \\%c at %d", esc, l.pos)
			}
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return "", fmt.Errorf("aql: unterminated string at %d", start)
}

// lexNumber handles ints, doubles, and the paper's ".5f" float-suffix
// style.
func (l *lexer) lexNumber(start int) {
	isDouble := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
		} else if c == '.' && !isDouble && l.peekAt(1) >= '0' && l.peekAt(1) <= '9' {
			isDouble = true
			l.pos++
		} else if c == '.' && !isDouble && l.pos == start {
			isDouble = true
			l.pos++
		} else {
			break
		}
	}
	text := l.src[start:l.pos]
	// Optional trailing 'f' (AQL float literal, e.g. .5f).
	if l.pos < len(l.src) && (l.src[l.pos] == 'f' || l.src[l.pos] == 'F') {
		isDouble = true
		l.pos++
	}
	if isDouble {
		l.toks = append(l.toks, token{tokDouble, text, start})
	} else {
		l.toks = append(l.toks, token{tokInt, text, start})
	}
}

func (l *lexer) lexOperator() string {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case ":=", "!=", "<=", ">=", "~=":
		l.pos += 2
		return two
	}
	c := l.src[l.pos]
	if strings.ContainsRune("=<>+-*/%", rune(c)) {
		l.pos++
		return string(c)
	}
	return ""
}

package optimizer

import (
	"sort"

	"simdb/internal/adm"
	"simdb/internal/algebra"
)

// projectionPushdownRule annotates every dataset scan with the set of
// top-level record fields the rest of the plan reads from the scan's
// record variable. The scan layer uses the annotation to decode only
// those fields — and, on columnar components, to read only their
// column blocks. The analysis is conservative: any use of the record
// variable that is not a field-access chain (the record escaping whole
// into an assign, a union rename, or the query result) leaves the
// annotation nil, meaning "scan everything".
//
// The rule recomputes the full set for every scan each pass and reports
// a change only when an annotation differs, so it coexists with the
// other physical rules in the fixpoint loop: once the plan shape
// stabilizes, the deterministic recomputation stabilizes with it.
func projectionPushdownRule(o *Optimizer, root *algebra.Op) (*algebra.Op, bool, error) {
	if !o.Opts.ProjectionPushdown {
		return root, false, nil
	}
	var scans []*algebra.Op
	algebra.Walk(root, func(op *algebra.Op) {
		if op.Kind == algebra.OpScan {
			scans = append(scans, op)
		}
	})
	changed := false
	for _, scan := range scans {
		want := referencedFields(root, scan.RecVar)
		if !sameFieldSet(scan.ProjectFields, want) {
			scan.ProjectFields = want
			changed = true
		}
	}
	return root, changed, nil
}

// referencedFields walks every operator in the plan and collects the
// top-level field names accessed on rec. It returns nil when any use is
// opaque (the whole record is needed), otherwise a sorted non-nil slice
// (possibly empty: the record is never read at all).
func referencedFields(root *algebra.Op, rec algebra.Var) []string {
	fields := map[string]bool{}
	opaque := false
	algebra.Walk(root, func(op *algebra.Op) {
		if opaque {
			return
		}
		// Structural uses that forward the record under another name or
		// emit it whole: OpWrite returns it to the client; OpUnion
		// renames it to an OutVar whose uses we do not track. OpProject
		// merely keeps the variable in scope — its consumers are all
		// visited by this same walk, so it is not opaque by itself.
		if op.Kind == algebra.OpWrite && op.Var == rec {
			opaque = true
			return
		}
		if op.Kind == algebra.OpUnion {
			for _, vs := range op.InVars {
				for _, v := range vs {
					if v == rec {
						opaque = true
						return
					}
				}
			}
		}
		for _, e := range op.UsedExprs() {
			if !collectRecFields(e, rec, fields) {
				opaque = true
				return
			}
		}
	})
	if opaque {
		return nil
	}
	out := make([]string, 0, len(fields))
	for f := range fields {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// collectRecFields records the top-level field of every field-access
// chain rooted at rec into fields. It returns false when rec is used
// other than through a field access — the record escapes whole and
// projection must not narrow the scan.
func collectRecFields(e algebra.Expr, rec algebra.Var, fields map[string]bool) bool {
	switch x := e.(type) {
	case algebra.VarRef:
		return x.V != rec
	case algebra.Call:
		if top, ok := topFieldOf(x, rec); ok {
			fields[top] = true
			return true
		}
		for _, a := range x.Args {
			if !collectRecFields(a, rec, fields) {
				return false
			}
		}
		return true
	case algebra.Comprehension:
		for _, c := range x.Clauses {
			if c.E != nil && !collectRecFields(c.E, rec, fields) {
				return false
			}
		}
		return collectRecFields(x.Ret, rec, fields)
	}
	return true
}

// topFieldOf matches a field-access chain rooted exactly at rec and
// returns the chain's outermost-from-the-record (top-level) field name:
// field-access(field-access($rec, "user"), "name") -> "user".
func topFieldOf(c algebra.Call, rec algebra.Var) (string, bool) {
	top := ""
	var e algebra.Expr = c
	for {
		call, ok := e.(algebra.Call)
		if !ok || call.Fn != "field-access" || len(call.Args) != 2 {
			break
		}
		name, ok := call.Args[1].(algebra.Const)
		if !ok || name.Val.Kind() != adm.KindString {
			return "", false
		}
		top = name.Val.Str()
		e = call.Args[0]
	}
	if vr, ok := e.(algebra.VarRef); ok && vr.V == rec && top != "" {
		return top, true
	}
	return "", false
}

// sameFieldSet compares two annotations, distinguishing nil (opaque)
// from empty (no fields needed).
func sameFieldSet(a, b []string) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Package algebra is SimDB's logical algebra — the Algebricks layer of
// the paper's stack. Queries translate into trees of variable-producing
// operators over scalar expressions; the rule-based optimizer rewrites
// these trees (including the AQL+ re-translation of similarity joins)
// and a physical pass annotates them with hyracks operators and
// connectors.
package algebra

import (
	"fmt"
	"strings"

	"simdb/internal/adm"
)

// Var identifies a logical variable ($v in plans). Variables are
// allocated by a VarAlloc and unique within one plan.
type Var int

// String renders the variable like AQL plans do.
func (v Var) String() string { return fmt.Sprintf("$%d", int(v)) }

// VarAlloc hands out fresh variables.
type VarAlloc struct{ next Var }

// New returns a fresh variable.
func (a *VarAlloc) New() Var {
	a.next++
	return a.next
}

// Expr is a scalar expression tree evaluated per tuple.
type Expr interface {
	exprNode()
	String() string
}

// Const is a literal value.
type Const struct{ Val adm.Value }

// VarRef references a logical variable.
type VarRef struct{ V Var }

// Call invokes a function from the registry; comparison, boolean and
// arithmetic operators are calls too ("eq", "and", "add", …), as are
// field access ("field-access") and constructors ("record", "list").
type Call struct {
	Fn   string
	Args []Expr
	// Hint carries a compiler hint attached to this expression (the
	// paper's /*+ bcast */ sits on one side of a join equality).
	Hint string
}

// CompClause is one clause of a Comprehension.
type CompClause struct {
	Kind string // "for", "let", "where", "order"
	V    string // bound name for for/let (comprehensions use names, not Vars)
	PosV string // positional name for "for ... at"
	E    Expr
	Desc bool // order direction
}

// Comprehension is an in-memory FLWOR over list values — the form a
// correlated subquery or an AQL UDF body takes when it does not scan a
// dataset. Free variables resolve through the enclosing Env; bound
// names shadow them.
type Comprehension struct {
	Clauses []CompClause
	Ret     Expr
}

// NameRef references a comprehension-bound name; it only appears inside
// Comprehension subtrees.
type NameRef struct{ Name string }

func (Const) exprNode()         {}
func (VarRef) exprNode()        {}
func (Call) exprNode()          {}
func (Comprehension) exprNode() {}
func (NameRef) exprNode()       {}

func (e Const) String() string   { return e.Val.String() }
func (e VarRef) String() string  { return e.V.String() }
func (e NameRef) String() string { return "%" + e.Name }

func (e Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	h := ""
	if e.Hint != "" {
		h = "/*+ " + e.Hint + " */"
	}
	return h + e.Fn + "(" + strings.Join(args, ", ") + ")"
}

func (e Comprehension) String() string {
	var b strings.Builder
	b.WriteString("(")
	for _, c := range e.Clauses {
		switch c.Kind {
		case "for":
			fmt.Fprintf(&b, "for %%%s in %s ", c.V, c.E)
		case "let":
			fmt.Fprintf(&b, "let %%%s := %s ", c.V, c.E)
		case "where":
			fmt.Fprintf(&b, "where %s ", c.E)
		case "order":
			fmt.Fprintf(&b, "order by %s ", c.E)
		}
	}
	fmt.Fprintf(&b, "return %s)", e.Ret)
	return b.String()
}

// C wraps a value as a Const expression.
func C(v adm.Value) Expr { return Const{Val: v} }

// CInt is a Const int convenience.
func CInt(i int64) Expr { return Const{Val: adm.NewInt(i)} }

// CStr is a Const string convenience.
func CStr(s string) Expr { return Const{Val: adm.NewString(s)} }

// V wraps a variable reference.
func V(v Var) Expr { return VarRef{V: v} }

// F builds a Call.
func F(fn string, args ...Expr) Expr { return Call{Fn: fn, Args: args} }

// UsedVars appends the variables referenced by e to dst.
func UsedVars(e Expr, dst []Var) []Var {
	switch x := e.(type) {
	case VarRef:
		return append(dst, x.V)
	case Call:
		for _, a := range x.Args {
			dst = UsedVars(a, dst)
		}
	case Comprehension:
		for _, c := range x.Clauses {
			if c.E != nil {
				dst = UsedVars(c.E, dst)
			}
		}
		dst = UsedVars(x.Ret, dst)
	}
	return dst
}

// SubstVars rewrites variable references through the mapping, leaving
// unmapped variables untouched. Expressions are immutable: a new tree
// is returned.
func SubstVars(e Expr, m map[Var]Var) Expr {
	switch x := e.(type) {
	case VarRef:
		if nv, ok := m[x.V]; ok {
			return VarRef{V: nv}
		}
		return x
	case Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = SubstVars(a, m)
		}
		return Call{Fn: x.Fn, Args: args, Hint: x.Hint}
	case Comprehension:
		cls := make([]CompClause, len(x.Clauses))
		for i, c := range x.Clauses {
			nc := c
			if c.E != nil {
				nc.E = SubstVars(c.E, m)
			}
			cls[i] = nc
		}
		return Comprehension{Clauses: cls, Ret: SubstVars(x.Ret, m)}
	}
	return e
}

// ReplaceExpr rewrites e bottom-up through fn.
func ReplaceExpr(e Expr, fn func(Expr) Expr) Expr {
	switch x := e.(type) {
	case Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = ReplaceExpr(a, fn)
		}
		e = Call{Fn: x.Fn, Args: args, Hint: x.Hint}
	case Comprehension:
		cls := make([]CompClause, len(x.Clauses))
		for i, c := range x.Clauses {
			nc := c
			if c.E != nil {
				nc.E = ReplaceExpr(c.E, fn)
			}
			cls[i] = nc
		}
		e = Comprehension{Clauses: cls, Ret: ReplaceExpr(x.Ret, fn)}
	}
	return fn(e)
}

// Conjuncts splits a condition into AND-ed conjuncts.
func Conjuncts(e Expr) []Expr {
	if c, ok := e.(Call); ok && c.Fn == "and" {
		var out []Expr
		for _, a := range c.Args {
			out = append(out, Conjuncts(a)...)
		}
		return out
	}
	return []Expr{e}
}

// AndAll combines conjuncts back into a single condition; an empty
// slice becomes constant true.
func AndAll(es []Expr) Expr {
	switch len(es) {
	case 0:
		return C(adm.NewBool(true))
	case 1:
		return es[0]
	}
	return Call{Fn: "and", Args: es}
}

// Command simdbload is an open-loop load generator for a running
// simdbd server:
//
//	simdbload -addr http://localhost:8095 -setup 20000
//	simdbload -addr http://localhost:8095 -clients 16 -rate 400 -duration 10s
//
// Arrivals fire on a fixed schedule regardless of completions (open
// loop), so server slowdown surfaces as latency and 503 rejections
// instead of silently throttling the generator. The query mix blends
// exact-match selections, keyword- and ngram-index similarity
// searches, and a heavier scan-bound aggregation; -mix reweights it.
// The run summary (counts by outcome, achieved QPS, p50/p95/p99 wall
// latency) prints as JSON on stdout.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"simdb/internal/bench"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8095", "simdbd base URL")
		clients  = flag.Int("clients", 8, "server-side sessions to spread requests across (0 = sessionless)")
		rate     = flag.Float64("rate", 100, "offered arrival rate, requests/sec")
		duration = flag.Duration("duration", 5*time.Second, "length of the arrival schedule")
		mix      = flag.String("mix", "exact:4,jaccard:3,edit:2,heavy:1", "weighted query mix (name:weight,...)")
		dataset  = flag.String("dataset", "Loadtest", "dataset name the mix queries")
		setup    = flag.Int("setup", 0, "create the dataset, ingest this many records, build indexes, then exit")
		seed     = flag.Int64("seed", 1, "record-generation seed for -setup")
	)
	flag.Parse()
	base := strings.TrimSuffix(*addr, "/")

	if *setup > 0 {
		if err := setupDataset(base, *dataset, *setup, *seed); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "simdbload: %d records ingested into %s\n", *setup, *dataset)
		return
	}

	weights, err := parseMix(*mix)
	if err != nil {
		fatal(err)
	}
	var sessions []string
	for i := 0; i < *clients; i++ {
		tok, err := createSession(base)
		if err != nil {
			fatal(fmt.Errorf("create session: %w", err))
		}
		sessions = append(sessions, tok)
	}
	opt := bench.ServingLoadOptions{
		Rate:     *rate,
		Duration: *duration,
		Mix:      loadMix(*dataset, weights),
		Sessions: sessions,
	}
	fmt.Fprintf(os.Stderr, "simdbload: %d sessions, %.0f req/s offered for %s against %s\n",
		len(sessions), *rate, *duration, base)
	res, err := bench.RunServingLoad(base, opt)
	if err != nil {
		fatal(err)
	}
	out, _ := json.MarshalIndent(res, "", "  ")
	fmt.Println(string(out))
	if res.OtherErrors > 0 {
		os.Exit(1)
	}
}

// parseMix decodes "name:weight,..." into a weight table.
func parseMix(s string) (map[string]int, error) {
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("simdbload: bad mix entry %q (want name:weight)", part)
		}
		w, err := strconv.Atoi(wstr)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("simdbload: bad weight in %q", part)
		}
		out[name] = w
	}
	return out, nil
}

// loadMix builds the weighted statement pool over the load dataset.
// The generated records (see setupDataset) carry username and summary
// fields, matching the similarity-query shapes from the paper.
func loadMix(dataset string, weights map[string]int) []bench.ServingQuery {
	names := []string{"james", "mary", "mario", "jamie", "maria", "marla"}
	phrases := []string{
		"great product works fine",
		"fantastic quality best ever",
		"charger gift movie heart",
	}
	var exact, jaccard, edit []string
	for _, n := range names {
		exact = append(exact, fmt.Sprintf(
			"count(for $r in dataset %s where $r.username = '%s' return $r.id)", dataset, n))
		edit = append(edit, fmt.Sprintf(
			"count(for $r in dataset %s where edit-distance($r.username, '%s') <= 1 return $r.id)",
			dataset, n))
	}
	for _, p := range phrases {
		jaccard = append(jaccard, fmt.Sprintf(
			`count(for $r in dataset %s
			 where similarity-jaccard(word-tokens($r.summary), word-tokens('%s')) >= 0.6
			 return $r.id)`, dataset, p))
	}
	heavy := []string{fmt.Sprintf(
		`count(for $r in dataset %s
		 where similarity-jaccard(word-tokens($r.summary), word-tokens('great product quality')) >= 0.2
		 return $r.id)`, dataset)}
	return []bench.ServingQuery{
		{Name: "exact", Weight: weights["exact"], Statements: exact},
		{Name: "jaccard", Weight: weights["jaccard"], Statements: jaccard},
		{Name: "edit", Weight: weights["edit"], Statements: edit},
		{Name: "heavy", Weight: weights["heavy"], Statements: heavy},
	}
}

// setupDataset provisions the load dataset through the server's own
// surface: DDL via /query, records via /ingest, then similarity
// indexes so the mix's index paths are real.
func setupDataset(base, dataset string, n int, seed int64) error {
	for _, stmt := range []string{
		fmt.Sprintf("create dataset %s primary key id;", dataset),
		fmt.Sprintf("create index %s_kw on %s(summary) type keyword;", strings.ToLower(dataset), dataset),
		fmt.Sprintf("create index %s_ng on %s(username) type ngram(2);", strings.ToLower(dataset), dataset),
	} {
		if err := runStatement(base, stmt); err != nil && !strings.Contains(err.Error(), "exists") {
			return err
		}
	}
	names := []string{"james", "mary", "mario", "jamie", "maria", "marla", "johnny", "joanna"}
	vocab := []string{"great", "product", "fantastic", "quality", "movie", "heart",
		"charger", "gift", "best", "ever", "works", "fine"}
	rng := seed
	next := func(m int) int { // xorshift; deterministic across runs
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		v := int(rng % int64(m))
		if v < 0 {
			v = -v
		}
		return v
	}
	pr, pw := io.Pipe()
	go func() {
		bw := bufio.NewWriter(pw)
		for i := 0; i < n; i++ {
			name := names[next(len(names))]
			if i%5 == 0 {
				name += strconv.Itoa(next(10))
			}
			var words []string
			for w, nw := 0, 3+next(6); w < nw; w++ {
				words = append(words, vocab[next(len(vocab))])
			}
			fmt.Fprintf(bw, "{\"id\": %d, \"username\": %q, \"summary\": %q}\n",
				i, name, strings.Join(words, " "))
		}
		bw.Flush()
		pw.Close()
	}()
	resp, err := http.Post(base+"/ingest/"+dataset, "application/x-ndjson", pr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("simdbload: ingest status %d: %s", resp.StatusCode, b)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// runStatement executes one AQL statement and drains the stream.
func runStatement(base, stmt string) error {
	resp, err := http.Post(base+"/query", "text/plain", strings.NewReader(stmt))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("simdbload: %q: status %d: %s", stmt, resp.StatusCode, body)
	}
	return nil
}

// createSession opens one server-side session.
func createSession(base string) (string, error) {
	resp, err := http.Post(base+"/sessions", "application/json", strings.NewReader("{}"))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.Session, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simdbload:", err)
	os.Exit(1)
}

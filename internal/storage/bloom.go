package storage

import "encoding/binary"

// Bloom filter over keys, one per on-disk component (AsterixDB attaches
// a bloom filter to every LSM component so point lookups can skip
// components that cannot contain the key).

// bloomBitsPerKey controls the false-positive rate; 10 bits/key gives
// roughly 1% false positives with 7 hash functions.
const (
	bloomBitsPerKey = 10
	bloomHashes     = 7
)

// Bloom is an immutable bloom filter.
type Bloom struct {
	bits []byte
	k    uint32
}

// NewBloomBuilder sizes a filter for the expected number of keys.
func NewBloomBuilder(expectedKeys int) *Bloom {
	if expectedKeys < 1 {
		expectedKeys = 1
	}
	nbits := expectedKeys * bloomBitsPerKey
	nbytes := (nbits + 7) / 8
	return &Bloom{bits: make([]byte, nbytes), k: bloomHashes}
}

// Add inserts a key into the filter.
func (b *Bloom) Add(key []byte) {
	h1, h2 := bloomHash(key)
	n := uint64(len(b.bits)) * 8
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

// MayContain reports whether the key may be present (no false negatives).
func (b *Bloom) MayContain(key []byte) bool {
	if len(b.bits) == 0 {
		return false
	}
	h1, h2 := bloomHash(key)
	n := uint64(len(b.bits)) * 8
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// SizeBytes returns the serialized size of the filter.
func (b *Bloom) SizeBytes() int { return 8 + len(b.bits) }

// marshal appends the filter's serialized form to dst.
func (b *Bloom) marshal(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, b.k)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.bits)))
	return append(dst, b.bits...)
}

// unmarshalBloom decodes a filter serialized by marshal.
func unmarshalBloom(buf []byte) (*Bloom, error) {
	if len(buf) < 8 {
		return nil, errCorrupt("bloom header")
	}
	k := binary.LittleEndian.Uint32(buf)
	n := binary.LittleEndian.Uint32(buf[4:])
	if uint32(len(buf)-8) < n {
		return nil, errCorrupt("bloom bits")
	}
	bits := make([]byte, n)
	copy(bits, buf[8:8+n])
	return &Bloom{bits: bits, k: k}, nil
}

// bloomHash derives two independent 64-bit hashes (FNV-1a variants) for
// double hashing.
func bloomHash(key []byte) (uint64, uint64) {
	const (
		off1  uint64 = 14695981039346656037
		off2  uint64 = 0x9E3779B97F4A7C15
		prime uint64 = 1099511628211
	)
	h1, h2 := off1, off2
	for _, c := range key {
		h1 = (h1 ^ uint64(c)) * prime
		h2 = (h2 + uint64(c)) * prime
		h2 ^= h2 >> 29
	}
	if h2%2 == 0 { // keep the stride odd so it cycles all bits
		h2++
	}
	return h1, h2
}

package algebra

import (
	"fmt"
	"strings"
)

// OpKind enumerates logical (and a few physical) operators.
type OpKind int

// Logical operator kinds. OpSecondarySearch and OpPrimaryLookup are the
// physical index operators the rewrite rules introduce (paper Figures 7
// and 10); they live in the same tree for simplicity.
const (
	OpEmpty           OpKind = iota // one empty tuple (Algebricks' EmptyTupleSource)
	OpScan                          // dataset scan; defines PKVar and RecVar
	OpSelect                        // Cond
	OpAssign                        // AssignVars := AssignExprs
	OpProject                       // keep only Vars
	OpUnnest                        // iterate a collection; defines UnnestVar (+PosVar)
	OpJoin                          // Cond over both inputs (constant true = cross)
	OpGroupBy                       // Keys + Aggs
	OpOrder                         // Orders
	OpLimit                         // Count
	OpRank                          // defines PosVar: 1-based global position
	OpUnion                         // bag union; InVars align inputs, OutVars fresh
	OpMaterialize                   // pipeline breaker
	OpAggregate                     // scalar aggregation to one tuple
	OpWrite                         // root: emit Var to the coordinator
	OpSecondarySearch               // inverted-index T-occurrence search
	OpPrimaryLookup                 // primary-index point lookup
)

// String names the kind like the paper's plan figures.
func (k OpKind) String() string {
	switch k {
	case OpEmpty:
		return "empty-tuple-source"
	case OpScan:
		return "data-scan"
	case OpSelect:
		return "select"
	case OpAssign:
		return "assign"
	case OpProject:
		return "project"
	case OpUnnest:
		return "unnest"
	case OpJoin:
		return "join"
	case OpGroupBy:
		return "group-by"
	case OpOrder:
		return "order"
	case OpLimit:
		return "limit"
	case OpRank:
		return "rank"
	case OpUnion:
		return "union"
	case OpMaterialize:
		return "materialize"
	case OpAggregate:
		return "aggregate"
	case OpWrite:
		return "distribute-result"
	case OpSecondarySearch:
		return "secondary-index-search"
	case OpPrimaryLookup:
		return "primary-index-lookup"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// AggKind enumerates aggregate functions in GroupBy/Aggregate ops.
type AggKind int

// Aggregate kinds; AggListify is AQL's "with $v" list collection.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
	AggListify
	AggFirst
)

// KeyDef is one group-by key: V := E.
type KeyDef struct {
	V Var
	E Expr
}

// AggDef is one aggregate output: V := kind(E).
type AggDef struct {
	V    Var
	Kind AggKind
	E    Expr
}

// OrderSpec is one order-by item.
type OrderSpec struct {
	E    Expr
	Desc bool
}

// JoinPhys selects the physical join algorithm.
type JoinPhys int

// Physical join choices made by the optimizer.
const (
	JoinPhysUnset         JoinPhys = iota
	JoinPhysHash                   // equi-join, hash repartitioned
	JoinPhysBroadcastHash          // equi-join, build side broadcast
	JoinPhysNestedLoop             // arbitrary predicate, build side broadcast
)

// Op is a logical plan operator. Plans are DAGs: an Op may appear as
// the input of several parents (the materialize/reuse rewrite of the
// paper's Figure 20 relies on this); job generation inserts a runtime
// Replicate for shared nodes.
type Op struct {
	Kind   OpKind
	Inputs []*Op

	// OpScan / OpPrimaryLookup
	Dataverse string
	Dataset   string
	PKVar     Var
	RecVar    Var

	// ProjectFields, on OpScan, is the projection-pushdown result: the
	// set of top-level record fields the rest of the plan reads from
	// RecVar. Nil means unknown or opaque (scan everything); a non-nil
	// slice — possibly empty — lets the scan decode only those fields
	// and, on columnar components, skip unreferenced column blocks.
	ProjectFields []string

	// OpSelect / OpJoin
	Cond Expr
	// BatchVerify, on OpSelect, marks a condition carrying a similarity
	// conjunct with a constant query side. Job generation lowers such
	// selects to the vectorized verify operator, which tokenizes the
	// query once per instance and checks candidates in batches.
	BatchVerify bool
	// FusedAssignVars/FusedAssignExprs, on OpSelect, hold an Assign the
	// specialization pass folded into the select: the evaluator computes
	// these bindings and the condition in one pass over each tuple. The
	// fused vars append to the select's output schema exactly where the
	// standalone assign would have put them.
	FusedAssignVars  []Var
	FusedAssignExprs []Expr
	// Compiled marks an operator whose expressions the specialization
	// pass cleared for closure compilation; job generation resolves
	// algebra.Compile evaluators for it and EXPLAIN annotates it.
	Compiled bool

	// OpJoin physical choice
	Phys      JoinPhys
	BuildSide int // input index to build/broadcast
	// Equi-join keys extracted by the optimizer (parallel slices; the
	// normalization pass reduces them to variable references).
	JoinLeftKeys  []Expr
	JoinRightKeys []Expr

	// OpAssign
	AssignVars  []Var
	AssignExprs []Expr

	// OpProject
	Vars []Var

	// OpUnnest / OpRank
	UnnestVar Var
	PosVar    Var
	Expr      Expr // also OpWrite's result expr input via Var below

	// OpGroupBy / OpAggregate
	Keys     []KeyDef
	Aggs     []AggDef
	HashHint bool // "/*+ hash */" on group-by

	// OpOrder
	Orders []OrderSpec

	// OpLimit
	Count int64

	// OpUnion
	InVars  [][]Var
	OutVars []Var

	// OpWrite
	Var Var

	// OpSecondarySearch
	IndexName string
	KeyExpr   Expr // expression producing the token list to probe
	TExpr     Expr // expression producing the occurrence threshold T
	OutVar    Var  // candidate primary keys (one per output tuple)

	// OpPrimaryLookup input key
	PKExpr Expr
	// RawPK marks PKExpr as yielding an already-encoded storage key (a
	// candidate produced by OpSecondarySearch) rather than a key value.
	RawPK bool
}

// NewOp builds an operator with inputs.
func NewOp(kind OpKind, inputs ...*Op) *Op {
	return &Op{Kind: kind, Inputs: inputs}
}

// DefinedVars returns the variables this operator introduces.
func (o *Op) DefinedVars() []Var {
	switch o.Kind {
	case OpScan:
		return []Var{o.PKVar, o.RecVar}
	case OpSelect:
		return append([]Var(nil), o.FusedAssignVars...)
	case OpAssign:
		return append([]Var(nil), o.AssignVars...)
	case OpUnnest:
		if o.PosVar != 0 {
			return []Var{o.UnnestVar, o.PosVar}
		}
		return []Var{o.UnnestVar}
	case OpRank:
		return []Var{o.PosVar}
	case OpGroupBy:
		out := make([]Var, 0, len(o.Keys)+len(o.Aggs))
		for _, k := range o.Keys {
			out = append(out, k.V)
		}
		for _, a := range o.Aggs {
			out = append(out, a.V)
		}
		return out
	case OpAggregate:
		out := make([]Var, 0, len(o.Aggs))
		for _, a := range o.Aggs {
			out = append(out, a.V)
		}
		return out
	case OpUnion:
		return append([]Var(nil), o.OutVars...)
	case OpSecondarySearch:
		return []Var{o.OutVar}
	case OpPrimaryLookup:
		return []Var{o.PKVar, o.RecVar}
	}
	return nil
}

// UsedExprs returns every expression the operator evaluates.
func (o *Op) UsedExprs() []Expr {
	var out []Expr
	add := func(e Expr) {
		if e != nil {
			out = append(out, e)
		}
	}
	add(o.Cond)
	for _, e := range o.AssignExprs {
		add(e)
	}
	for _, e := range o.FusedAssignExprs {
		add(e)
	}
	for _, e := range o.JoinLeftKeys {
		add(e)
	}
	for _, e := range o.JoinRightKeys {
		add(e)
	}
	add(o.Expr)
	for _, k := range o.Keys {
		add(k.E)
	}
	for _, a := range o.Aggs {
		add(a.E)
	}
	for _, os := range o.Orders {
		add(os.E)
	}
	add(o.KeyExpr)
	add(o.TExpr)
	add(o.PKExpr)
	return out
}

// UsedVarsOf returns the variables the operator's expressions and
// structural fields reference (not counting its inputs' own usage).
func (o *Op) UsedVarsOf() []Var {
	var out []Var
	for _, e := range o.UsedExprs() {
		out = UsedVars(e, out)
	}
	if o.Kind == OpProject {
		out = append(out, o.Vars...)
	}
	if o.Kind == OpUnion {
		for _, vs := range o.InVars {
			out = append(out, vs...)
		}
	}
	if o.Kind == OpWrite {
		out = append(out, o.Var)
	}
	return out
}

// Schema returns the variables visible in this operator's output, in a
// deterministic order.
func (o *Op) Schema() []Var {
	switch o.Kind {
	case OpEmpty:
		return nil
	case OpScan:
		return []Var{o.PKVar, o.RecVar}
	case OpProject:
		return append([]Var(nil), o.Vars...)
	case OpGroupBy, OpAggregate:
		return o.DefinedVars()
	case OpUnion:
		return append([]Var(nil), o.OutVars...)
	case OpJoin:
		out := append([]Var(nil), o.Inputs[0].Schema()...)
		return append(out, o.Inputs[1].Schema()...)
	case OpWrite:
		return []Var{o.Var}
	default:
		var out []Var
		if len(o.Inputs) > 0 {
			out = append(out, o.Inputs[0].Schema()...)
		}
		return append(out, o.DefinedVars()...)
	}
}

// Walk visits the DAG once per node, inputs before parents.
func Walk(root *Op, fn func(*Op)) {
	seen := map[*Op]bool{}
	var rec func(*Op)
	rec = func(o *Op) {
		if o == nil || seen[o] {
			return
		}
		seen[o] = true
		for _, in := range o.Inputs {
			rec(in)
		}
		fn(o)
	}
	rec(root)
}

// CountOps returns the number of distinct operators in the plan — the
// quantity of the paper's Figure 15.
func CountOps(root *Op) int {
	n := 0
	Walk(root, func(*Op) { n++ })
	return n
}

// CountKind returns the number of distinct operators of one kind.
func CountKind(root *Op, k OpKind) int {
	n := 0
	Walk(root, func(o *Op) {
		if o.Kind == k {
			n++
		}
	})
	return n
}

// Copy deep-copies the plan reachable from root, allocating fresh
// variables for every defined variable and remapping references. Shared
// nodes stay shared in the copy. It returns the copy and the variable
// mapping — the machinery AQL+ meta clauses rely on to instantiate a
// branch several times.
func Copy(root *Op, alloc *VarAlloc) (*Op, map[Var]Var) {
	varMap := map[Var]Var{}
	// First pass: allocate new vars for every defined var in the DAG.
	Walk(root, func(o *Op) {
		for _, v := range o.DefinedVars() {
			if _, ok := varMap[v]; !ok {
				varMap[v] = alloc.New()
			}
		}
	})
	nodeMap := map[*Op]*Op{}
	var rec func(*Op) *Op
	rec = func(o *Op) *Op {
		if o == nil {
			return nil
		}
		if c, ok := nodeMap[o]; ok {
			return c
		}
		c := &Op{}
		*c = *o
		if o.ProjectFields != nil {
			// Preserve non-nilness: an empty non-nil slice means "no
			// record fields needed", which nil does not.
			c.ProjectFields = append(make([]string, 0, len(o.ProjectFields)), o.ProjectFields...)
		}
		c.Inputs = make([]*Op, len(o.Inputs))
		for i, in := range o.Inputs {
			c.Inputs[i] = rec(in)
		}
		remap := func(v Var) Var {
			if nv, ok := varMap[v]; ok {
				return nv
			}
			return v
		}
		c.PKVar = remap(o.PKVar)
		c.RecVar = remap(o.RecVar)
		c.UnnestVar = remap(o.UnnestVar)
		c.PosVar = remap(o.PosVar)
		c.OutVar = remap(o.OutVar)
		c.Var = remap(o.Var)
		if o.Cond != nil {
			c.Cond = SubstVars(o.Cond, varMap)
		}
		if o.Expr != nil {
			c.Expr = SubstVars(o.Expr, varMap)
		}
		if o.KeyExpr != nil {
			c.KeyExpr = SubstVars(o.KeyExpr, varMap)
		}
		if o.TExpr != nil {
			c.TExpr = SubstVars(o.TExpr, varMap)
		}
		if o.PKExpr != nil {
			c.PKExpr = SubstVars(o.PKExpr, varMap)
		}
		c.AssignVars = remapVars(o.AssignVars, varMap)
		c.AssignExprs = substAll(o.AssignExprs, varMap)
		c.FusedAssignVars = remapVars(o.FusedAssignVars, varMap)
		c.FusedAssignExprs = substAll(o.FusedAssignExprs, varMap)
		c.JoinLeftKeys = substAll(o.JoinLeftKeys, varMap)
		c.JoinRightKeys = substAll(o.JoinRightKeys, varMap)
		c.Vars = remapVars(o.Vars, varMap)
		c.OutVars = remapVars(o.OutVars, varMap)
		if o.InVars != nil {
			c.InVars = make([][]Var, len(o.InVars))
			for i, vs := range o.InVars {
				c.InVars[i] = remapVars(vs, varMap)
			}
		}
		if o.Keys != nil {
			c.Keys = make([]KeyDef, len(o.Keys))
			for i, k := range o.Keys {
				c.Keys[i] = KeyDef{V: remap(k.V), E: SubstVars(k.E, varMap)}
			}
		}
		if o.Aggs != nil {
			c.Aggs = make([]AggDef, len(o.Aggs))
			for i, a := range o.Aggs {
				c.Aggs[i] = AggDef{V: remap(a.V), Kind: a.Kind, E: SubstVars(a.E, varMap)}
			}
		}
		if o.Orders != nil {
			c.Orders = make([]OrderSpec, len(o.Orders))
			for i, os := range o.Orders {
				c.Orders[i] = OrderSpec{E: SubstVars(os.E, varMap), Desc: os.Desc}
			}
		}
		nodeMap[o] = c
		return c
	}
	return rec(root), varMap
}

func remapVars(vs []Var, m map[Var]Var) []Var {
	if vs == nil {
		return nil
	}
	out := make([]Var, len(vs))
	for i, v := range vs {
		if nv, ok := m[v]; ok {
			out[i] = nv
		} else {
			out[i] = v
		}
	}
	return out
}

func substAll(es []Expr, m map[Var]Var) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = SubstVars(e, m)
	}
	return out
}

// Print renders the plan as an indented tree; shared nodes print once
// and later occurrences reference their first line.
func Print(root *Op) string {
	var b strings.Builder
	ids := map[*Op]int{}
	next := 0
	var rec func(o *Op, depth int)
	rec = func(o *Op, depth int) {
		indent := strings.Repeat("  ", depth)
		if id, ok := ids[o]; ok {
			fmt.Fprintf(&b, "%s^shared(#%d %s)\n", indent, id, o.Kind)
			return
		}
		ids[o] = next
		next++
		mark := ""
		if o.Compiled {
			mark = " [compiled]"
		}
		fmt.Fprintf(&b, "%s#%d %s%s%s\n", indent, ids[o], o.Kind, opDetail(o), mark)
		for _, in := range o.Inputs {
			rec(in, depth+1)
		}
	}
	rec(root, 0)
	return b.String()
}

func opDetail(o *Op) string {
	switch o.Kind {
	case OpScan:
		d := fmt.Sprintf(" %s.%s -> pk:%v rec:%v", o.Dataverse, o.Dataset, o.PKVar, o.RecVar)
		if o.ProjectFields != nil {
			d += fmt.Sprintf(" project:[%s]", strings.Join(o.ProjectFields, ", "))
		}
		return d
	case OpSelect, OpJoin:
		d := fmt.Sprintf(" (%s)", o.Cond)
		if o.Kind == OpJoin && o.Phys != JoinPhysUnset {
			d += fmt.Sprintf(" [phys=%d build=%d]", o.Phys, o.BuildSide)
		}
		if o.Kind == OpSelect && len(o.FusedAssignVars) > 0 {
			parts := make([]string, len(o.FusedAssignVars))
			for i := range o.FusedAssignVars {
				parts[i] = fmt.Sprintf("%v := %s", o.FusedAssignVars[i], o.FusedAssignExprs[i])
			}
			d += fmt.Sprintf(" [fused-assign %s]", strings.Join(parts, ", "))
		}
		if o.Kind == OpSelect && o.BatchVerify {
			d += " [batched]"
		}
		return d
	case OpAssign:
		parts := make([]string, len(o.AssignVars))
		for i := range o.AssignVars {
			parts[i] = fmt.Sprintf("%v := %s", o.AssignVars[i], o.AssignExprs[i])
		}
		return " " + strings.Join(parts, ", ")
	case OpProject:
		return fmt.Sprintf(" %v", o.Vars)
	case OpUnnest:
		if o.PosVar != 0 {
			return fmt.Sprintf(" %v at %v in %s", o.UnnestVar, o.PosVar, o.Expr)
		}
		return fmt.Sprintf(" %v in %s", o.UnnestVar, o.Expr)
	case OpGroupBy:
		var ks, as []string
		for _, k := range o.Keys {
			ks = append(ks, fmt.Sprintf("%v := %s", k.V, k.E))
		}
		for _, a := range o.Aggs {
			as = append(as, fmt.Sprintf("%v := agg%d(%s)", a.V, a.Kind, a.E))
		}
		h := ""
		if o.HashHint {
			h = " /*+ hash */"
		}
		return fmt.Sprintf("%s keys[%s] aggs[%s]", h, strings.Join(ks, ", "), strings.Join(as, ", "))
	case OpOrder:
		var ss []string
		for _, s := range o.Orders {
			dir := "asc"
			if s.Desc {
				dir = "desc"
			}
			ss = append(ss, fmt.Sprintf("%s %s", s.E, dir))
		}
		return " " + strings.Join(ss, ", ")
	case OpLimit:
		return fmt.Sprintf(" %d", o.Count)
	case OpRank:
		return fmt.Sprintf(" -> %v", o.PosVar)
	case OpAggregate:
		var as []string
		for _, a := range o.Aggs {
			as = append(as, fmt.Sprintf("%v := agg%d(%s)", a.V, a.Kind, a.E))
		}
		return " " + strings.Join(as, ", ")
	case OpWrite:
		return fmt.Sprintf(" %v", o.Var)
	case OpSecondarySearch:
		return fmt.Sprintf(" %s.%s.%s keys=%s T=%s -> %v", o.Dataverse, o.Dataset, o.IndexName, o.KeyExpr, o.TExpr, o.OutVar)
	case OpPrimaryLookup:
		return fmt.Sprintf(" %s.%s pk=%s -> %v,%v", o.Dataverse, o.Dataset, o.PKExpr, o.PKVar, o.RecVar)
	}
	return ""
}
